"""Sorted-merge equi-joins over the shared row vector.

The planner (see :meth:`repro.sql.planner.Planner._finalize_node`) chooses a
merge join when both inputs of an inner equi-join are *index-ordered* on the
join key: each side is a base-table leaf whose scan has been replaced by an
ordered :class:`~repro.sql.executor.scan.IndexRangeScanPlan` over an existing
sorted index.  Both sides then stream in key order and one synchronized pass
finds every match — O(|L| + |R|) key comparisons plus the output size,
against the hash join's build-table construction per (re)open and the nested
loop's O(|L|·|R|) condition evaluations.  Because the ordered scans come from
incrementally-maintained indexes, a rescan costs two bisect-free re-opens and
nothing else, which is what makes the operator attractive under the
trampoline's repeated re-probes.

Vector protocol (same as :mod:`~repro.sql.executor.hashjoin`): both sides
write into the shared row vector.  Right-side rows of the current key group
are snapshotted so the group can be replayed for every equal-keyed left row;
on emit the snapshot is written back before the residual condition runs.

Semantics kept aligned with the nested loop:

* NULL keys never match; both inputs deliver NULLs *last* (ascending index
  order), so the first NULL key on either side ends the merge,
* key comparisons go through :func:`repro.sql.values.compare`, which raises
  the same type error a nested-loop ``l = r`` evaluation would raise for
  SQL-incomparable values.  (Unlike the nested loop, the merge only compares
  the pairs it visits, so a run that *skips* every incomparable pair can
  finish where the nested loop would raise — the differential tests pin the
  agreeing cases.)

Only inner (and keyed cross) joins take this path: LEFT JOIN stays on the
hash/nested-loop operators, whose preserved-side bookkeeping already exists.
"""

from __future__ import annotations

from ..expr import EvalContext
from ..profiler import MERGEJOIN_SCANS
from ..values import compare, sort_key
from .fromtree import FromNodePlan, FromNodeState
from .scan import make_slots


class MergeJoinPlan(FromNodePlan):
    """Merge join of two index-ordered FROM leaves.

    ``left_key`` / ``right_key`` are single compiled key expressions, each
    referencing only its own side and matching the scan order of that
    side's ordered index scan; ``residual`` is the compiled conjunction of
    the remaining ON conjuncts (may be None).
    """

    __slots__ = ("left", "right", "left_key", "right_key", "residual",
                 "subplans", "key_display")

    def __init__(self, left: FromNodePlan, right: FromNodePlan,
                 left_key, right_key, residual, subplans, key_display: str):
        super().__init__(left.rel_slots + right.rel_slots)
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.subplans = subplans
        self.key_display = key_display

    def instantiate(self, rt, ictx, vector: list) -> "MergeJoinState":
        return MergeJoinState(
            rt, vector, self,
            self.left.instantiate(rt, ictx, vector),
            self.right.instantiate(rt, ictx, vector),
            make_slots(rt, ictx, self.subplans))

    def explain(self, indent: int = 0) -> str:
        head = ("  " * indent
                + f"-> MergeJoin INNER JOIN ({self.key_display})")
        return "\n".join([head,
                          self.left.explain(indent + 1),
                          self.right.explain(indent + 1)])


class MergeJoinState(FromNodeState):
    __slots__ = ("plan", "left", "right", "slots", "_ctx",
                 "_right_slot_ids", "_left_value", "_have_left",
                 "_right_ahead", "_right_done", "_group", "_group_value",
                 "_group_pos")

    def __init__(self, rt, vector, plan: MergeJoinPlan,
                 left: FromNodeState, right: FromNodeState, slots: list):
        super().__init__(rt, vector)
        self.plan = plan
        self.left = left
        self.right = right
        self.slots = slots
        self._ctx: EvalContext | None = None
        self._right_slot_ids = [index for index, _ in plan.right.rel_slots]
        self._reset()

    def _reset(self) -> None:
        self._left_value = None
        self._have_left = False
        self._right_ahead = None  # (key value, right-slot snapshot)
        self._right_done = False
        self._group: list | None = None
        self._group_value = None
        self._group_pos = 0

    def open(self, outer) -> None:
        if self._ctx is None or self.outer is not outer:
            self._ctx = EvalContext(self.rt, self.vector, parent=outer,
                                    slots=self.slots)
        self.outer = outer
        self.left.open(outer)
        self.right.open(outer)
        self._reset()
        self.rt.db.profiler.bump(MERGEJOIN_SCANS)

    # -- side advancement ------------------------------------------------

    def _next_left(self) -> bool:
        """Advance the left side; False at exhaustion or first NULL key
        (NULLs sort last in the scan order, so no matches remain)."""
        if not self.left.next():
            return False
        value = self.plan.left_key(self._ctx)
        if value is None:
            return False
        self._left_value = value
        return True

    def _next_right(self):
        """``(key value, right-slot snapshot)`` for the next right row, or
        None at exhaustion / first NULL key."""
        if self._right_done:
            return None
        if not self.right.next():
            self._right_done = True
            return None
        value = self.plan.right_key(self._ctx)
        if value is None:
            self._right_done = True
            return None
        vector = self.vector
        return value, tuple(vector[i] for i in self._right_slot_ids)

    # -- the merge -------------------------------------------------------

    def next(self) -> bool:
        ctx = self._ctx
        plan = self.plan
        vector = self.vector
        slot_ids = self._right_slot_ids
        residual = plan.residual
        cancel = self.rt.cancel
        while True:
            cancel.check()
            # Replay the buffered right group for the current left row.
            group = self._group
            if group is not None:
                while self._group_pos < len(group):
                    snapshot = group[self._group_pos]
                    self._group_pos += 1
                    for slot, value in zip(slot_ids, snapshot):
                        vector[slot] = value
                    if residual is None or residual(ctx) is True:
                        return True
                # Group exhausted: the next left row may share the key.
                if not self._next_left():
                    return False
                if compare(self._left_value, self._group_value) == 0:
                    self._group_pos = 0
                    continue
                self._group = None
                self._have_left = True
            if not self._have_left:
                if not self._next_left():
                    return False
                self._have_left = True
            # Synchronized advance until the heads share a key.
            # Every iteration consumes a left or right row; finite child
            # streams, and leaf scans poll the token amortized.
            # lint: bounded
            while True:
                if self._right_ahead is None:
                    self._right_ahead = self._next_right()
                    if self._right_ahead is None:
                        return False
                right_value, snapshot = self._right_ahead
                ordering = compare(self._left_value, right_value)
                if ordering is None:
                    # A NULL *field* inside a row/array key: the SQL
                    # comparison is NULL, never a match (top-level NULL
                    # keys were already cut off by _next_left/_next_right).
                    # Such a key can never compare TRUE-equal to anything,
                    # so advance whichever side the index order puts
                    # first and keep merging.
                    if sort_key(self._left_value) <= sort_key(right_value):
                        if not self._next_left():
                            return False
                    else:
                        self._right_ahead = None
                    continue
                if ordering > 0:
                    self._right_ahead = None
                    continue
                if ordering < 0:
                    if not self._next_left():
                        return False
                    continue
                # Equal heads: buffer every right row of this key.
                group = [snapshot]
                self._right_ahead = None
                # lint: bounded — drains one key group from the right side.
                while True:
                    ahead = self._next_right()
                    if ahead is None:
                        break
                    if compare(ahead[0], right_value) == 0:
                        group.append(ahead[1])
                    else:
                        self._right_ahead = ahead
                        break
                self._group = group
                self._group_value = right_value
                self._group_pos = 0
                self._have_left = False
                break

    def close(self) -> None:
        self.left.close()
        self.right.close()
