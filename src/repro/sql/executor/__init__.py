"""Iterator-model plan operators (the engine's executor).

Each plan node (:mod:`repro.sql.planner`) knows how to *instantiate* itself
into a per-execution state object (:class:`~repro.sql.executor.base.PlanState`).
Instantiation is the engine's ``ExecutorStart`` — the cost the paper's
``f→Qi`` context switches pay on every embedded-query evaluation and the cost
a compiled ``WITH RECURSIVE`` query pays exactly once.
"""

from .base import ExecContext, PlanState

__all__ = ["ExecContext", "PlanState"]
