"""Common table expressions: materialization, recursion, and WITH ITERATE.

``WITH RECURSIVE`` follows PostgreSQL's working-table algorithm: seed the
working table from the base term, then repeatedly evaluate the recursive
term with the CTE's self-reference bound to the *previous step's* rows,
appending every step to the union trace that the final query reads.

That trace is exactly the "wasted effort" the paper calls out for
tail-recursive computations: only the last activation matters, yet vanilla
WITH RECURSIVE buffers them all (quadratic page writes for ``parse()``,
Table 2).  ``WITH ITERATE`` — the paper's proposed construct, which we
implement here as the engine-side "modest local change" of Section 3 —
keeps only the most recent step: the CTE's result is the last *non-empty*
working table, and nothing is ever spilled to the buffer manager.

Engine extension: unlike PostgreSQL, CTE bodies here may reference columns
of an enclosing query.  Inlined compiled functions need this — their
argument expressions live inside the CTE's base term.  Each (re)open of the
enclosing statement therefore invalidates and re-materializes its CTEs.
"""

from __future__ import annotations

from typing import Optional

from ...faults import FAULTS
from ..errors import ExecutionError, PlanError
from ..profiler import (RECURSION_DEDUP_DROPPED, TRAMPOLINE_ITERATIONS,
                        TRAMPOLINE_WORKING_ROWS)
from ..storage import TupleStore
from .base import Plan, PlanState
from ..values import hashable_row as _hashable_row


class WorkingSetDedup:
    """Hash-based dedup for ``UNION`` (not ALL) recursion.

    A row may enter the union trace — and therefore the working set — only
    once over the whole evaluation; rows re-derived in a later step are
    dropped in O(1) via a hash set over their hashable form.  This is what
    terminates cyclic traversals (the paper's graph workload): without it a
    cycle re-derives the same rows forever.
    """

    __slots__ = ("seen", "dropped")

    def __init__(self):
        self.seen: set = set()
        self.dropped = 0

    def fresh(self, rows: list[tuple]) -> list[tuple]:
        """The not-yet-seen subset of *rows* (marking them seen)."""
        out = []
        seen = self.seen
        for row in rows:
            key = _hashable_row(row)
            if key not in seen:
                seen.add(key)
                out.append(row)
            else:
                self.dropped += 1
        return out


class CteDef:
    """Plan-time description of one CTE.  Identity (not name) keys runtime
    lookup, so shadowed names in nested scopes behave correctly."""

    __slots__ = ("name", "columns", "plan", "base_plan", "rec_plan",
                 "union_all", "iterate", "recursive")

    def __init__(self, name: str, columns: list[str]):
        self.name = name
        self.columns = columns
        self.plan: Optional[Plan] = None          # plain CTE
        self.base_plan: Optional[Plan] = None     # recursive CTE seed
        self.rec_plan: Optional[Plan] = None      # recursive term
        self.union_all = True
        self.iterate = False
        self.recursive = False


class InstantiationContext:
    """Chain of CteDef -> CteRuntime bindings threaded through instantiate."""

    __slots__ = ("parent", "bindings")

    def __init__(self, parent: Optional["InstantiationContext"] = None):
        self.parent = parent
        self.bindings: dict[CteDef, "CteRuntime"] = {}

    def find(self, cte_def: CteDef) -> "CteRuntime":
        node: Optional[InstantiationContext] = self
        while node is not None:
            runtime = node.bindings.get(cte_def)
            if runtime is not None:
                return runtime
            node = node.parent
        raise PlanError(f"CTE {cte_def.name!r} has no runtime binding "
                        "(scan outside its WITH scope?)")


class CteRuntime:
    """Per-instantiation storage and evaluation driver for one CTE."""

    __slots__ = ("cte_def", "rt", "plain_state", "base_state", "rec_state",
                 "rows", "working", "in_recursion", "materializing", "outer",
                 "iterations")

    def __init__(self, cte_def: CteDef, rt):
        self.cte_def = cte_def
        self.rt = rt
        self.plain_state: Optional[PlanState] = None
        self.base_state: Optional[PlanState] = None
        self.rec_state: Optional[PlanState] = None
        self.rows: Optional[list[tuple]] = None
        self.working: list[tuple] = []
        self.in_recursion = False
        self.materializing = False
        self.outer = None
        self.iterations = 0

    def build_states(self, ictx: InstantiationContext) -> None:
        """Instantiate the definition plans.  Called after this runtime is
        bound in *ictx* so that the recursive term's self-scan resolves."""
        cte_def = self.cte_def
        if cte_def.plan is not None:
            self.plain_state = cte_def.plan.instantiate(self.rt, ictx)
        if cte_def.base_plan is not None:
            self.base_state = cte_def.base_plan.instantiate(self.rt, ictx)
        if cte_def.rec_plan is not None:
            self.rec_state = cte_def.rec_plan.instantiate(self.rt, ictx)

    def invalidate(self, outer) -> None:
        """Called when the owning statement (re)opens: forget results and
        remember the outer context the definition query must see."""
        self.rows = None
        self.outer = outer

    def ensure_materialized(self) -> list[tuple]:
        if self.rows is not None:
            return self.rows
        if self.materializing:
            raise ExecutionError(
                f"recursive reference to CTE {self.cte_def.name!r} outside "
                "its recursive term")
        self.materializing = True
        try:
            if self.cte_def.recursive:
                self.rows = self._materialize_recursive()
            else:
                assert self.plain_state is not None
                self.plain_state.open(self.outer)
                self.rows = self.plain_state.fetch_all()
        finally:
            self.materializing = False
        return self.rows

    def _materialize_recursive(self) -> list[tuple]:
        cte = self.cte_def
        profiler = self.rt.db.profiler
        assert self.base_state is not None and self.rec_state is not None
        self.base_state.open(self.outer)
        working = self.base_state.fetch_all()
        dedup: Optional[WorkingSetDedup] = None
        if not cte.union_all:
            dedup = WorkingSetDedup()
            working = dedup.fresh(working)
        iterate = cte.iterate
        # The union trace is what WITH RECURSIVE spills; WITH ITERATE keeps
        # only the newest step and therefore writes no pages at all.
        trace = TupleStore(self.rt.db.buffers, tracked=True) if not iterate else None
        if trace is not None:
            trace.extend(working)
        last_nonempty = working
        limit = self.rt.db.max_recursion_iterations
        cancel = self.rt.cancel
        self.iterations = 0
        while working:
            cancel.check()
            if FAULTS.active:
                FAULTS.fire("exec.recursion", profiler)
            self.iterations += 1
            if self.iterations > limit:
                raise ExecutionError(
                    f"recursive CTE {cte.name!r} exceeded "
                    f"{limit} iterations (possible infinite recursion)")
            profiler.bump(TRAMPOLINE_ITERATIONS)
            profiler.bump(TRAMPOLINE_WORKING_ROWS, len(working))
            self.working = working
            self.in_recursion = True
            try:
                self.rec_state.open(self.outer)
                new_rows = self.rec_state.fetch_all()
            finally:
                self.in_recursion = False
            if dedup is not None:
                before = dedup.dropped
                new_rows = dedup.fresh(new_rows)
                profiler.bump(RECURSION_DEDUP_DROPPED, dedup.dropped - before)
            if trace is not None:
                trace.extend(new_rows)
            if new_rows:
                last_nonempty = new_rows
            working = new_rows
        self.working = []
        return last_nonempty if iterate else trace.rows  # type: ignore[union-attr]


class CTEScanPlan(Plan):
    """Scan of a CTE by name.  Inside the CTE's own recursive term this reads
    the working table (PostgreSQL's WorkTableScan); elsewhere it reads the
    materialized result, materializing on first use."""

    __slots__ = ("cte_def",)

    def __init__(self, cte_def: CteDef, output_columns: list[str]):
        super().__init__(output_columns)
        self.cte_def = cte_def

    def label(self) -> str:
        return f"CTEScan on {self.cte_def.name}"

    def instantiate(self, rt, ictx=None) -> "CTEScanState":
        if ictx is None:
            raise PlanError(f"CTE scan of {self.cte_def.name!r} requires an "
                            "instantiation context")
        return CTEScanState(rt, self, ictx.find(self.cte_def))


class CTEScanState(PlanState):
    __slots__ = ("plan", "runtime", "rows", "pos")

    def __init__(self, rt, plan: CTEScanPlan, runtime: CteRuntime):
        super().__init__(rt)
        self.plan = plan
        self.runtime = runtime
        self.rows: list[tuple] = []
        self.pos = 0

    def open(self, outer) -> None:
        runtime = self.runtime
        if runtime.in_recursion:
            self.rows = runtime.working
        else:
            self.rows = runtime.ensure_materialized()
        self.pos = 0

    def next(self) -> Optional[tuple]:
        if self.pos >= len(self.rows):
            return None
        row = self.rows[self.pos]
        self.pos += 1
        return row


class SelectStmtPlan(Plan):
    """Root of one SELECT statement level: owns CTE definitions, delegates
    tuple flow to the child (body [+ Sort + Limit]) plan."""

    __slots__ = ("cte_defs", "child")

    def __init__(self, cte_defs: list[CteDef], child: Plan):
        super().__init__(child.output_columns)
        self.cte_defs = cte_defs
        self.child = child

    def children(self) -> list[Plan]:
        return [self.child]

    def label(self) -> str:
        if self.cte_defs:
            names = ", ".join(d.name for d in self.cte_defs)
            return f"WithClause [{names}]"
        return "Select"

    def instantiate(self, rt, ictx=None) -> "SelectStmtState":
        return SelectStmtState(rt, self, ictx)


class SelectStmtState(PlanState):
    __slots__ = ("plan", "runtimes", "child")

    def __init__(self, rt, plan: SelectStmtPlan, ictx):
        super().__init__(rt)
        self.plan = plan
        inner = InstantiationContext(parent=ictx)
        self.runtimes = []
        for cte_def in plan.cte_defs:
            runtime = CteRuntime(cte_def, rt)
            inner.bindings[cte_def] = runtime
            runtime.build_states(inner)
            self.runtimes.append(runtime)
        self.child = plan.child.instantiate(rt, inner)

    def open(self, outer) -> None:
        for runtime in self.runtimes:
            runtime.invalidate(outer)
        self.child.open(outer)

    def next(self) -> Optional[tuple]:
        return self.child.next()

    def close(self) -> None:
        self.child.close()
