"""FROM-clause evaluation: join trees over a shared row vector.

A SELECT's FROM clause is planned into a tree of :class:`FromLeafPlan` /
:class:`FromJoinPlan` (nested loop) / :class:`~.hashjoin.HashJoinPlan`
nodes that all write into one shared *row vector* — one slot per FROM
relation, in syntactic left-to-right order.  Expressions over the SELECT
(WHERE, projections, join conditions) evaluate against that vector.  The
planner picks the join strategy per node at plan time: equi-joins become
build/probe hash joins, everything else (non-equi conditions, LATERAL)
stays on the nested-loop path below.  Single-relation WHERE conjuncts are
pushed down onto the leaves as *filters*, so they run before any join
multiplies rows.

LATERAL falls out naturally: the right side of a join is re-opened for every
left tick, and a lateral subquery is simply opened with an
:class:`~repro.sql.expr.EvalContext` over the (partially filled) vector, so
references to earlier FROM items resolve as level-1 correlations.  This is
the mechanism that executes the paper's ``LEFT JOIN LATERAL`` chains — the
SQL encoding of PL/SQL statement sequencing — and, because each lateral
source processes single-row bindings, each "join" costs one rescan.
"""

from __future__ import annotations

from typing import Optional

from ..expr import EvalContext
from .base import Plan, PlanState
from .scan import make_slots


class FromNodePlan:
    """Base for FROM-tree plan nodes (not tuple sources themselves)."""

    __slots__ = ("rel_slots",)

    def __init__(self, rel_slots: list[tuple[int, int]]):
        #: (vector index, relation width) pairs covered by this subtree —
        #: used for NULL-filling the right side of LEFT JOINs.
        self.rel_slots = rel_slots

    def instantiate(self, rt, ictx, vector: list) -> "FromNodeState":
        raise NotImplementedError

    def children(self) -> list[Plan]:
        return []

    def explain(self, indent: int = 0) -> str:
        raise NotImplementedError


class FromNodeState:
    """Runtime counterpart: fills vector slots; ``next()`` returns a bool."""

    __slots__ = ("rt", "vector", "outer")

    def __init__(self, rt, vector: list):
        self.rt = rt
        self.vector = vector
        self.outer: Optional[EvalContext] = None

    def open(self, outer: Optional[EvalContext]) -> None:
        raise NotImplementedError

    def next(self) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        pass


class FromLeafPlan(FromNodePlan):
    """One FROM item: a tuple source writing to ``vector[rel_index]``.

    ``filter`` (set by the planner's predicate pushdown) is a compiled
    conjunction of the WHERE conjuncts that reference only this relation;
    rows failing it never reach the enclosing join.
    """

    __slots__ = ("rel_index", "source", "lateral", "filter", "filter_subplans")

    def __init__(self, rel_index: int, width: int, source: Plan, lateral: bool):
        super().__init__([(rel_index, width)])
        self.rel_index = rel_index
        self.source = source
        self.lateral = lateral
        self.filter = None
        self.filter_subplans: list = []

    def instantiate(self, rt, ictx, vector: list) -> "FromLeafState":
        return FromLeafState(rt, vector, self,
                             self.source.instantiate(rt, ictx),
                             make_slots(rt, ictx, self.filter_subplans))

    def children(self) -> list[Plan]:
        return [self.source]

    def explain(self, indent: int = 0) -> str:
        head = "  " * indent + ("-> Lateral" if self.lateral else "-> From")
        head += f" #{self.rel_index}"
        if self.filter is not None:
            head += "  (pushed-down filter)"
        return head + "\n" + self.source.explain(indent + 1)


class FromLeafState(FromNodeState):
    __slots__ = ("plan", "source", "_vector_ctx", "source_next", "rel_index",
                 "filter_slots", "_filter_ctx")

    def __init__(self, rt, vector, plan: FromLeafPlan, source: PlanState,
                 filter_slots: list):
        super().__init__(rt, vector)
        self.plan = plan
        self.source = source
        self.source_next = source.next
        self.rel_index = plan.rel_index
        self.filter_slots = filter_slots
        self._vector_ctx: EvalContext | None = None
        self._filter_ctx: EvalContext | None = None

    def open(self, outer) -> None:
        rebind = self.outer is not outer
        if self.plan.filter is not None and (self._filter_ctx is None or rebind):
            self._filter_ctx = EvalContext(self.rt, self.vector, parent=outer,
                                           slots=self.filter_slots)
        if self.plan.lateral or type(self.source).__name__ in (
                "IndexScanState", "IndexRangeScanState"):
            # The source sees the shared vector as its immediate outer scope
            # (index scans evaluate their correlated keys against it).
            if self._vector_ctx is None or rebind:
                self._vector_ctx = EvalContext(self.rt, self.vector,
                                               parent=outer)
            self.outer = outer
            self.source.open(self._vector_ctx)
        else:
            self.outer = outer
            self.source.open(outer)

    def next(self) -> bool:
        predicate = self.plan.filter
        # lint: bounded — advances the source operator; leaf scans poll
        while True:
            row = self.source_next()
            if row is None:
                return False
            self.vector[self.rel_index] = row
            if predicate is None or predicate(self._filter_ctx) is True:
                return True

    def close(self) -> None:
        self.source.close()


class FromJoinPlan(FromNodePlan):
    """Nested-loop join of two FROM subtrees over the shared vector.

    ``kind`` is ``inner``, ``left`` or ``cross``.  ``condition`` is a
    compiled predicate (None for cross); ``condition_subplans`` are the
    subquery slots its evaluation may need.
    """

    __slots__ = ("kind", "left", "right", "condition", "condition_subplans")

    def __init__(self, kind: str, left: FromNodePlan, right: FromNodePlan,
                 condition, condition_subplans):
        super().__init__(left.rel_slots + right.rel_slots)
        self.kind = kind
        self.left = left
        self.right = right
        self.condition = condition
        self.condition_subplans = condition_subplans

    def instantiate(self, rt, ictx, vector: list) -> "FromJoinState":
        return FromJoinState(
            rt, vector, self,
            self.left.instantiate(rt, ictx, vector),
            self.right.instantiate(rt, ictx, vector),
            make_slots(rt, ictx, self.condition_subplans))

    def explain(self, indent: int = 0) -> str:
        head = "  " * indent + f"-> NestLoop {self.kind.upper()} JOIN"
        return "\n".join([head,
                          self.left.explain(indent + 1),
                          self.right.explain(indent + 1)])


class FromJoinState(FromNodeState):
    __slots__ = ("plan", "left", "right", "slots", "need_left", "matched")

    def __init__(self, rt, vector, plan: FromJoinPlan,
                 left: FromNodeState, right: FromNodeState, slots: list):
        super().__init__(rt, vector)
        self.plan = plan
        self.left = left
        self.right = right
        self.slots = slots
        self.need_left = True
        self.matched = False

    def open(self, outer) -> None:
        self.outer = outer
        self.left.open(outer)
        self.need_left = True
        self.matched = False

    def _null_fill_right(self) -> None:
        for rel_index, width in self.plan.right.rel_slots:
            self.vector[rel_index] = (None,) * width

    def next(self) -> bool:
        plan = self.plan
        # lint: bounded — advances child operators; leaf scans poll
        while True:
            if self.need_left:
                if not self.left.next():
                    return False
                # Re-open the right side for the new left tick; lateral
                # references pick up the freshly filled vector slots.
                self.right.open(self.outer)
                self.need_left = False
                self.matched = False
            if self.right.next():
                if plan.condition is not None:
                    ctx = EvalContext(self.rt, self.vector, parent=self.outer,
                                      slots=self.slots)
                    if plan.condition(ctx) is not True:
                        continue
                self.matched = True
                return True
            # Right side exhausted for this left tick.
            self.need_left = True
            if plan.kind == "left" and not self.matched:
                self._null_fill_right()
                return True

    def close(self) -> None:
        self.left.close()
        self.right.close()
