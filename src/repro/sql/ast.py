"""AST node definitions for the SQL dialect understood by the engine.

The same nodes are produced by :mod:`repro.sql.parser` when parsing text and
constructed programmatically by the PL/SQL compiler when it emits queries.
:mod:`repro.sql.sqlgen` renders them back to SQL text in several dialects.

All nodes are small frozen-ish dataclasses (not frozen, so the planner may
annotate them, but they should be treated as immutable by convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from .values import Value

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all scalar expressions."""

    __slots__ = ()


@dataclass
class Literal(Expr):
    """A constant: number, string, boolean, or NULL."""

    value: Value


@dataclass
class ColumnRef(Expr):
    """A possibly-qualified name: ``x``, ``t.x`` or ``t.x.f`` (field access).

    Resolution (splitting table qualifier from composite field access)
    happens in the expression compiler, which knows the visible scopes.
    """

    parts: tuple[str, ...]

    @property
    def display(self) -> str:
        return ".".join(self.parts)


@dataclass
class Param(Expr):
    """Positional parameter ``$n`` (1-based)."""

    index: int


@dataclass
class BinaryOp(Expr):
    """Binary operator; ``op`` is one of
    ``+ - * / % || = <> < <= > >= and or``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """Unary operator; ``op`` is ``-``, ``+`` or ``not``."""

    op: str
    operand: Expr


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class IsBool(Expr):
    """``expr IS [NOT] TRUE/FALSE`` — never NULL."""

    operand: Expr
    value: bool
    negated: bool = False


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: list[Expr]
    negated: bool = False


@dataclass
class InSubquery(Expr):
    operand: Expr
    subquery: "SelectStmt"
    negated: bool = False


@dataclass
class Exists(Expr):
    subquery: "SelectStmt"


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False
    case_insensitive: bool = False


@dataclass
class CaseExpr(Expr):
    """Searched CASE when ``operand`` is None, simple CASE otherwise."""

    operand: Optional[Expr]
    whens: list[tuple[Expr, Expr]]
    else_result: Optional[Expr]


@dataclass
class Cast(Expr):
    operand: Expr
    type_name: str


@dataclass
class FuncCall(Expr):
    """Function call; covers scalar builtins, aggregates, and registered
    user functions.  ``star`` marks ``count(*)``; ``window`` attaches an
    OVER clause (either an inline :class:`WindowSpec` or the name of a
    window declared in the WINDOW clause)."""

    name: str
    args: list[Expr]
    star: bool = False
    distinct: bool = False
    window: Union["WindowSpec", str, None] = None


@dataclass
class RowExpr(Expr):
    """``ROW(a, b, ...)`` constructor."""

    items: list[Expr]
    type_name: Optional[str] = None


@dataclass
class ArrayExpr(Expr):
    """``ARRAY[a, b, ...]`` constructor."""

    items: list[Expr]


@dataclass
class ArrayIndex(Expr):
    """``arr[i]`` subscripting (1-based, SQL style)."""

    operand: Expr
    index: Expr


@dataclass
class FieldAccess(Expr):
    """``(expr).field`` — field selection from a composite value."""

    operand: Expr
    fieldname: str


@dataclass
class ScalarSubquery(Expr):
    """A parenthesised SELECT used as a scalar value."""

    query: "SelectStmt"


# ---------------------------------------------------------------------------
# Window specifications
# ---------------------------------------------------------------------------


@dataclass
class SortItem:
    expr: Expr
    descending: bool = False
    nulls_first: Optional[bool] = None  # None = dialect default


@dataclass
class FrameBound:
    """One edge of a window frame.

    ``kind`` is one of ``unbounded_preceding``, ``preceding``, ``current``,
    ``following``, ``unbounded_following``; ``offset`` is the expression for
    ``<n> PRECEDING/FOLLOWING`` bounds.
    """

    kind: str
    offset: Optional[Expr] = None


@dataclass
class FrameSpec:
    mode: str = "range"  # 'rows' | 'range' | 'groups'
    start: FrameBound = field(default_factory=lambda: FrameBound("unbounded_preceding"))
    end: FrameBound = field(default_factory=lambda: FrameBound("current"))
    exclusion: Optional[str] = None  # 'current row' | 'ties' | 'group'


@dataclass
class WindowSpec:
    """An OVER (...) specification; ``ref_name`` names a base window that
    this spec refines (``(leq ROWS ...)`` in the paper's Q2)."""

    ref_name: Optional[str] = None
    partition_by: list[Expr] = field(default_factory=list)
    order_by: list[SortItem] = field(default_factory=list)
    frame: Optional[FrameSpec] = None


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


class TableRef:
    """Base class for everything that may appear in FROM."""

    __slots__ = ()


@dataclass
class TableName(TableRef):
    name: str
    alias: Optional[str] = None
    column_aliases: Optional[list[str]] = None


@dataclass
class SubqueryRef(TableRef):
    query: "SelectStmt"
    alias: str
    column_aliases: Optional[list[str]] = None
    lateral: bool = False


@dataclass
class Join(TableRef):
    """``kind`` is ``inner``, ``left`` or ``cross``.  A comma in FROM parses
    as a cross join.  LATERAL is a property of the right-hand side ref."""

    kind: str
    left: TableRef
    right: TableRef
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# SELECT statements
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class Star:
    """``*`` or ``t.*`` in a select list."""

    table: Optional[str] = None


@dataclass
class SelectCore:
    """One SELECT ... FROM ... WHERE ... block (no ORDER BY/LIMIT)."""

    items: list[Union[SelectItem, Star]]
    from_clause: Optional[TableRef] = None
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False
    windows: dict[str, WindowSpec] = field(default_factory=dict)


@dataclass
class ValuesClause:
    """``VALUES (...), (...)`` usable as a select body."""

    rows: list[list[Expr]]


@dataclass
class SetOp:
    """UNION [ALL] / INTERSECT / EXCEPT of two select bodies."""

    op: str  # 'union' | 'union_all' | 'intersect' | 'except'
    left: Union[SelectCore, "SetOp", ValuesClause]
    right: Union[SelectCore, "SetOp", ValuesClause]


@dataclass
class CommonTableExpr:
    name: str
    column_names: Optional[list[str]]
    query: "SelectStmt"


@dataclass
class WithClause:
    """``WITH [RECURSIVE | ITERATE] name (...) AS (...) , ...``.

    ``iterate`` marks the paper's proposed WITH ITERATE variant: the working
    table retains only the rows of the most recent step and the CTE's final
    content is that last step (plus, for convenience, rows marked final by
    the recursive term's own filter — see executor/recursion.py).
    """

    recursive: bool
    ctes: list[CommonTableExpr]
    iterate: bool = False


@dataclass
class SelectStmt:
    with_clause: Optional[WithClause]
    body: Union[SelectCore, SetOp, ValuesClause]
    order_by: list[SortItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None


# ---------------------------------------------------------------------------
# DDL / DML
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    type_name: str


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnDef]
    if_not_exists: bool = False


@dataclass
class CreateType:
    name: str
    fields: list[ColumnDef]


@dataclass
class IndexedColumn:
    """One key column of ``CREATE INDEX``: name plus sort direction."""

    name: str
    descending: bool = False


@dataclass
class CreateIndex:
    """``CREATE INDEX [IF NOT EXISTS] name ON table (col [ASC|DESC], ...)``.

    Declares a sorted index (see :class:`repro.sql.storage.SortedIndex`):
    built eagerly, maintained incrementally by DML, consulted by the
    planner for range scans, sort elimination and merge joins.
    """

    name: str
    table: str
    columns: list[IndexedColumn]
    if_not_exists: bool = False


@dataclass
class DropIndex:
    name: str
    if_exists: bool = False


@dataclass
class FunctionParam:
    name: str
    type_name: str


@dataclass
class CreateFunction:
    """``CREATE [OR REPLACE] FUNCTION ... LANGUAGE {SQL | PLPGSQL}``.

    The body is kept as raw text; PL/pgSQL bodies are parsed lazily by the
    PL/pgSQL front end, SQL bodies by the SQL parser.
    """

    name: str
    params: list[FunctionParam]
    return_type: str
    language: str
    body: str
    replace: bool = False
    #: Declared volatility class (``immutable``/``stable``/``volatile``),
    #: or None when the declaration omitted it and the static analyzer's
    #: inference is authoritative.
    volatility: Optional[str] = None


@dataclass
class Insert:
    table: str
    columns: Optional[list[str]]
    source: SelectStmt


@dataclass
class Update:
    table: str
    assignments: list[tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expr] = None


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class DropFunction:
    name: str
    if_exists: bool = False


# ---------------------------------------------------------------------------
# Session statements: prepared statements, settings, EXPLAIN
# ---------------------------------------------------------------------------


@dataclass
class PrepareStmt:
    """``PREPARE name [(type, ...)] AS statement``.

    Registers *statement* (SELECT or DML with ``$n`` holes) under *name* in
    the executing session.  The plan is cached on the handle and stamped
    with the DDL generation and settings fingerprint, so stale handles
    replan instead of returning stale results.
    """

    name: str
    param_types: Optional[list[str]]
    statement: "Statement"


@dataclass
class ExecuteStmt:
    """``EXECUTE name [(expr, ...)]`` — run a prepared statement.

    Argument expressions are evaluated without a row context (literals,
    arithmetic, ``$n`` references to the outer call's parameters, scalar
    subqueries) and bound to the prepared statement's parameters.
    """

    name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class DeallocateStmt:
    """``DEALLOCATE [PREPARE] (name | ALL)``; ``name`` is None for ALL."""

    name: Optional[str] = None
    if_exists: bool = False


@dataclass
class SetStmt:
    """``SET [LOCAL] name (= | TO) (value | DEFAULT)``.

    ``value`` is None for ``SET name = DEFAULT`` (equivalent to RESET).
    ``local`` scopes the assignment to the enclosing script (reverted when
    the script ends; a no-op with a notice outside one, like PostgreSQL's
    SET LOCAL outside a transaction).
    """

    name: str
    value: Optional[Expr]
    local: bool = False


@dataclass
class ShowStmt:
    """``SHOW name`` / ``SHOW ALL`` (``name`` is None for ALL)."""

    name: Optional[str] = None


@dataclass
class ResetStmt:
    """``RESET name`` / ``RESET ALL`` (``name`` is None for ALL)."""

    name: Optional[str] = None


@dataclass
class ExplainStmt:
    """``EXPLAIN statement`` — render the plan tree instead of running it.

    Supports SELECT and EXECUTE (the latter shows the prepared handle's
    *current* plan, after any replan forced by DDL or settings changes).
    """

    statement: "Statement"


# ---------------------------------------------------------------------------
# Transaction control
# ---------------------------------------------------------------------------


@dataclass
class BeginStmt:
    """``BEGIN [WORK | TRANSACTION]`` / ``START TRANSACTION``.

    Opens an explicit transaction block on the executing session; the
    block's snapshot is captured at its first subsequent statement.
    A BEGIN inside an open block is a warning-notice no-op.
    """


@dataclass
class CommitStmt:
    """``COMMIT [WORK | TRANSACTION]`` / ``END`` — a warning-notice no-op
    outside a transaction block, like PostgreSQL."""


@dataclass
class RollbackStmt:
    """``ROLLBACK [WORK | TRANSACTION]`` / ``ABORT``, or
    ``ROLLBACK [WORK | TRANSACTION] TO [SAVEPOINT] name`` when
    ``savepoint`` is set (the savepoint itself survives, PostgreSQL
    style)."""

    savepoint: Optional[str] = None


@dataclass
class SavepointStmt:
    """``SAVEPOINT name`` — only valid inside a transaction block."""

    name: str


@dataclass
class ReleaseStmt:
    """``RELEASE [SAVEPOINT] name`` — forgets *name* and every savepoint
    established after it, without undoing any work."""

    name: str


@dataclass
class CheckFunctionStmt:
    """``CHECK FUNCTION name | ALL`` — run the static analyzer
    (:mod:`repro.analysis`) over one registered function (or every
    user-defined one) and return its diagnostics as rows."""

    name: Optional[str] = None  # None means ALL


@dataclass
class CheckpointStmt:
    """``CHECKPOINT`` — compact the WAL to a snapshot-prefixed log.

    A no-op (with a notice) on a non-durable database; inside an explicit
    transaction block it is rejected like PostgreSQL rejects VACUUM."""


Statement = Union[SelectStmt, CreateTable, CreateType, CreateFunction,
                  CreateIndex, Insert, Update, Delete, DropTable,
                  DropFunction, DropIndex, PrepareStmt, ExecuteStmt,
                  DeallocateStmt, SetStmt, ShowStmt, ResetStmt, ExplainStmt,
                  BeginStmt, CommitStmt, RollbackStmt, SavepointStmt,
                  ReleaseStmt, CheckpointStmt, CheckFunctionStmt]
