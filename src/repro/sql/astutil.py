"""Generic AST utilities: structural equality, traversal, and substitution.

Used by the planner (GROUP BY matching, aggregate/window extraction,
compiled-function inlining) and by the PL/SQL compiler (parameter
substitution when splicing argument expressions into a compiled query).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, Optional

from . import ast as A
from .errors import PlanError
from .functions import is_aggregate_name


def expr_children(expr: A.Expr) -> Iterator[A.Expr]:
    """Yield the direct sub-expressions of *expr* (not subquery internals)."""
    for fld in dataclasses.fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, fld.name)
        if isinstance(value, A.Expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A.Expr):
                    yield item
                elif isinstance(item, tuple):
                    for part in item:
                        if isinstance(part, A.Expr):
                            yield part


def walk_expr(expr: A.Expr) -> Iterator[A.Expr]:
    """Depth-first pre-order walk of *expr*, not descending into subqueries."""
    yield expr
    for child in expr_children(expr):
        yield from walk_expr(child)


def expr_equal(a: Optional[A.Expr], b: Optional[A.Expr]) -> bool:
    """Structural equality of two expressions (used for GROUP BY matching)."""
    if a is None or b is None:
        return a is b
    if type(a) is not type(b):
        return False
    for fld in dataclasses.fields(a):  # type: ignore[arg-type]
        va, vb = getattr(a, fld.name), getattr(b, fld.name)
        if isinstance(va, A.Expr) or isinstance(vb, A.Expr):
            if not expr_equal(va, vb):
                return False
        elif isinstance(va, list) and isinstance(vb, list):
            if len(va) != len(vb):
                return False
            for ia, ib in zip(va, vb):
                if isinstance(ia, A.Expr) or isinstance(ib, A.Expr):
                    if not expr_equal(ia, ib):
                        return False
                elif isinstance(ia, tuple) and isinstance(ib, tuple):
                    if len(ia) != len(ib) or not all(
                            expr_equal(x, y) if isinstance(x, A.Expr) else x == y
                            for x, y in zip(ia, ib)):
                        return False
                elif ia != ib:
                    return False
        elif va != vb:
            # Subqueries compare by identity (good enough for GROUP BY use).
            return False
    return True


def transform_expr(expr: A.Expr,
                   fn: Callable[[A.Expr], Optional[A.Expr]]) -> A.Expr:
    """Bottom-up rewrite: apply *fn* to every node; ``None`` keeps the node.

    Children are rewritten first, then *fn* sees the rebuilt node.  Subquery
    boundaries are **not** crossed (the planner recurses into subqueries when
    planning them).
    """
    rebuilt = _rebuild_with_children(expr, lambda c: transform_expr(c, fn))
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def _rebuild_with_children(expr: A.Expr, rec) -> A.Expr:
    changes = {}
    for fld in dataclasses.fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, fld.name)
        if isinstance(value, A.Expr):
            new = rec(value)
            if new is not value:
                changes[fld.name] = new
        elif isinstance(value, list) and value and any(
                isinstance(v, (A.Expr, tuple)) for v in value):
            new_list = []
            dirty = False
            for item in value:
                if isinstance(item, A.Expr):
                    new_item = rec(item)
                elif isinstance(item, tuple) and any(isinstance(p, A.Expr) for p in item):
                    new_item = tuple(rec(p) if isinstance(p, A.Expr) else p
                                     for p in item)
                else:
                    new_item = item
                dirty = dirty or new_item is not item
                new_list.append(new_item)
            if dirty:
                changes[fld.name] = new_list
    if not changes:
        return expr
    return dataclasses.replace(expr, **changes)  # type: ignore[type-var]


def substitute_params(expr: A.Expr, args: list[A.Expr]) -> A.Expr:
    """Replace ``$n`` parameter nodes with the n-th expression from *args*.

    This is how the planner inlines a compiled function: the stored query
    template has one ``Param`` hole per function parameter, and the call
    site's argument expressions are spliced in.  Substitution also recurses
    into subqueries, since compiled templates are built around scalar
    subqueries and CTEs.
    """

    def leaf(node: A.Expr) -> Optional[A.Expr]:
        if isinstance(node, A.Param):
            if node.index < 1 or node.index > len(args):
                raise PlanError(f"parameter ${node.index} out of range "
                                f"({len(args)} arguments)")
            return args[node.index - 1]
        for name, sub in _subquery_fields(node):
            substituted = substitute_params_select(sub, args)
            node = dataclasses.replace(node, **{name: substituted})  # type: ignore[type-var]
        return node

    return transform_expr(expr, leaf)


def _subquery_fields(node: A.Expr):
    if isinstance(node, (A.ScalarSubquery, A.Exists)):
        attr = "query" if isinstance(node, A.ScalarSubquery) else "subquery"
        yield attr, getattr(node, attr)
    elif isinstance(node, A.InSubquery):
        yield "subquery", node.subquery


def substitute_params_select(stmt: A.SelectStmt, args: list[A.Expr]) -> A.SelectStmt:
    """Parameter substitution over a whole SELECT statement (deep copy)."""

    def sub_expr(e: Optional[A.Expr]) -> Optional[A.Expr]:
        return None if e is None else substitute_params(e, args)

    def sub_body(body):
        if isinstance(body, A.SetOp):
            return A.SetOp(body.op, sub_body(body.left), sub_body(body.right))
        if isinstance(body, A.ValuesClause):
            return A.ValuesClause([[sub_expr(e) for e in row] for row in body.rows])
        core: A.SelectCore = body
        items = []
        for item in core.items:
            if isinstance(item, A.Star):
                items.append(item)
            else:
                items.append(A.SelectItem(sub_expr(item.expr), item.alias))
        return A.SelectCore(
            items=items,
            from_clause=sub_table(core.from_clause),
            where=sub_expr(core.where),
            group_by=[sub_expr(e) for e in core.group_by],
            having=sub_expr(core.having),
            distinct=core.distinct,
            windows={name: _sub_window(spec, args)
                     for name, spec in core.windows.items()},
        )

    def sub_table(ref):
        if ref is None:
            return None
        if isinstance(ref, A.TableName):
            return ref
        if isinstance(ref, A.SubqueryRef):
            return A.SubqueryRef(substitute_params_select(ref.query, args),
                                 ref.alias, ref.column_aliases, ref.lateral)
        if isinstance(ref, A.Join):
            return A.Join(ref.kind, sub_table(ref.left), sub_table(ref.right),
                          sub_expr(ref.condition))
        raise PlanError(f"unknown table ref {type(ref).__name__}")

    with_clause = None
    if stmt.with_clause is not None:
        with_clause = A.WithClause(
            stmt.with_clause.recursive,
            [A.CommonTableExpr(c.name, c.column_names,
                               substitute_params_select(c.query, args))
             for c in stmt.with_clause.ctes],
            stmt.with_clause.iterate,
        )
    return A.SelectStmt(
        with_clause=with_clause,
        body=sub_body(stmt.body),
        order_by=[A.SortItem(sub_expr(s.expr), s.descending, s.nulls_first)
                  for s in stmt.order_by],
        limit=sub_expr(stmt.limit),
        offset=sub_expr(stmt.offset),
    )


def _sub_window(spec: A.WindowSpec, args: list[A.Expr]) -> A.WindowSpec:
    return A.WindowSpec(
        ref_name=spec.ref_name,
        partition_by=[substitute_params(e, args) for e in spec.partition_by],
        order_by=[A.SortItem(substitute_params(s.expr, args), s.descending,
                             s.nulls_first) for s in spec.order_by],
        frame=spec.frame,
    )


def transform_select(stmt: A.SelectStmt,
                     leaf: Callable[[A.Expr], Optional[A.Expr]]) -> A.SelectStmt:
    """Deep expression rewrite over a whole SELECT, crossing subqueries.

    *leaf* is applied bottom-up to every expression node everywhere in the
    statement (select list, FROM subqueries, WHERE, CTE bodies, ...); return
    ``None`` to keep a node.  Used e.g. to bind a SQL function body's named
    parameters to ``$n`` placeholders.
    """

    def fix(node: A.Expr) -> Optional[A.Expr]:
        for attr, sub in _subquery_fields(node):
            node = dataclasses.replace(  # type: ignore[type-var]
                node, **{attr: transform_select(sub, leaf)})
        replacement = leaf(node)
        return node if replacement is None else replacement

    def sub_expr(e: Optional[A.Expr]) -> Optional[A.Expr]:
        return None if e is None else transform_expr(e, fix)

    def sub_body(body):
        if isinstance(body, A.SetOp):
            return A.SetOp(body.op, sub_body(body.left), sub_body(body.right))
        if isinstance(body, A.ValuesClause):
            return A.ValuesClause([[sub_expr(e) for e in row]
                                   for row in body.rows])
        core: A.SelectCore = body
        items = [item if isinstance(item, A.Star)
                 else A.SelectItem(sub_expr(item.expr), item.alias)
                 for item in core.items]
        return A.SelectCore(
            items=items,
            from_clause=sub_table(core.from_clause),
            where=sub_expr(core.where),
            group_by=[sub_expr(e) for e in core.group_by],
            having=sub_expr(core.having),
            distinct=core.distinct,
            windows={name: A.WindowSpec(
                ref_name=spec.ref_name,
                partition_by=[sub_expr(e) for e in spec.partition_by],
                order_by=[A.SortItem(sub_expr(s.expr), s.descending,
                                     s.nulls_first) for s in spec.order_by],
                frame=spec.frame)
                for name, spec in core.windows.items()},
        )

    def sub_table(ref):
        if ref is None:
            return None
        if isinstance(ref, A.TableName):
            return ref
        if isinstance(ref, A.SubqueryRef):
            return A.SubqueryRef(transform_select(ref.query, leaf), ref.alias,
                                 ref.column_aliases, ref.lateral)
        if isinstance(ref, A.Join):
            return A.Join(ref.kind, sub_table(ref.left), sub_table(ref.right),
                          sub_expr(ref.condition))
        raise PlanError(f"unknown table ref {type(ref).__name__}")

    with_clause = None
    if stmt.with_clause is not None:
        with_clause = A.WithClause(
            stmt.with_clause.recursive,
            [A.CommonTableExpr(c.name, c.column_names,
                               transform_select(c.query, leaf))
             for c in stmt.with_clause.ctes],
            stmt.with_clause.iterate,
        )
    return A.SelectStmt(
        with_clause=with_clause,
        body=sub_body(stmt.body),
        order_by=[A.SortItem(sub_expr(s.expr), s.descending, s.nulls_first)
                  for s in stmt.order_by],
        limit=sub_expr(stmt.limit),
        offset=sub_expr(stmt.offset),
    )


def split_conjuncts(expr: A.Expr) -> list[A.Expr]:
    """Flatten a conjunction into its top-level AND-ed conjuncts."""
    if isinstance(expr, A.BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[A.Expr]) -> Optional[A.Expr]:
    """Rebuild an AND chain from *conjuncts* (None for the empty list)."""
    out: Optional[A.Expr] = None
    for conjunct in conjuncts:
        out = conjunct if out is None else A.BinaryOp("and", out, conjunct)
    return out


class ColumnBindings:
    """Which relations an expression reads — the planner's pushdown oracle.

    ``rels`` is the set of level-0 relation indices referenced; ``outer`` is
    True when some reference resolves to an enclosing scope.  ``unknown``
    means the analysis is inconclusive (a subquery, whose internals this
    walk does not enter; a name that fails to resolve; or a function call
    that is volatile or user-defined and therefore must keep its exact
    evaluation count) and the caller must assume the expression may read
    *anything* — it must stay where the query text put it.
    """

    __slots__ = ("rels", "outer", "unknown")

    def __init__(self, rels: frozenset, outer: bool, unknown: bool):
        self.rels = rels
        self.outer = outer
        self.unknown = unknown


def column_bindings(expr: A.Expr, scope, catalog=None) -> ColumnBindings:
    """Resolve every column reference in *expr* against *scope* and report
    which level-0 relations it binds (see :class:`ColumnBindings`).

    Used by the planner to decide whether a WHERE conjunct can be pushed
    below a join and whether an equality's sides straddle a join cleanly
    enough to become hash-join keys.

    When *catalog* is supplied, user-defined function calls consult the
    static analyzer's volatility inference (:mod:`repro.analysis`): a call
    proven immutable, raise-free and loop-free moves as freely as a pure
    builtin.  Without a catalog the pre-analyzer pessimism applies — every
    user call pins its expression in place.
    """
    from .errors import NameResolutionError
    from .functions import SCALAR_BUILTINS, VOLATILE_FUNCTIONS

    rels: set[int] = set()
    outer = False
    unknown = False
    for node in walk_expr(expr):
        if isinstance(node, (A.ScalarSubquery, A.Exists, A.InSubquery)):
            unknown = True
            continue
        if isinstance(node, A.FuncCall):
            # Moving an expression changes how often it runs: only pure
            # calls may move.  Volatile builtins (random, ...) pin the
            # conjunct in place; user-defined functions do too unless the
            # analyzer proves them pure (PostgreSQL defaults them to
            # VOLATILE, and they may raise).
            name = node.name.lower()
            pure = (name == "coalesce"
                    or (name in SCALAR_BUILTINS
                        and name not in VOLATILE_FUNCTIONS))
            if not pure and catalog is not None \
                    and name not in SCALAR_BUILTINS:
                fdef = catalog.get_function(name)
                if fdef is not None:
                    from ..analysis.volatility import function_is_pure
                    pure = function_is_pure(fdef, catalog)
            if not pure:
                unknown = True
            continue
        if isinstance(node, A.ColumnRef):
            try:
                level, rel_index, _col, _fields = scope.resolve(node.parts)
            except NameResolutionError:
                unknown = True
                continue
            if level == 0:
                rels.add(rel_index)
            else:
                outer = True
    return ColumnBindings(frozenset(rels), outer, unknown)


def contains_aggregate(expr: A.Expr) -> bool:
    """True when *expr* contains a non-windowed aggregate call."""
    for node in walk_expr(expr):
        if isinstance(node, A.FuncCall) and node.window is None \
                and is_aggregate_name(node.name):
            return True
    return False


def contains_window_call(expr: A.Expr) -> bool:
    for node in walk_expr(expr):
        if isinstance(node, A.FuncCall) and node.window is not None:
            return True
    return False


def max_param_index(stmt: A.SelectStmt) -> int:
    """Highest ``$n`` used anywhere in *stmt* (0 when parameter-free)."""
    best = 0

    class _Finder:
        def visit(self, e: A.Expr):
            nonlocal best
            for node in walk_expr(e):
                if isinstance(node, A.Param):
                    best = max(best, node.index)
                for _, sub in _subquery_fields(node):
                    _walk_select(sub, self)

    finder = _Finder()
    _walk_select(stmt, finder)
    return best


def references_table(node, table: str) -> bool:
    """True when *node* (any AST statement/expression) names *table* in a
    FROM clause anywhere — including CTE bodies and subqueries nested in
    expressions.  Conservative on purpose: a CTE merely *shadowing* the
    name still counts, so callers using this as a "reads the table" test
    may over-approximate but never miss a read."""
    from dataclasses import fields, is_dataclass
    target = table.lower()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, A.TableName):
            if current.name.lower() == target:
                return True
            continue
        if is_dataclass(current) and not isinstance(current, type):
            stack.extend(getattr(current, f.name) for f in fields(current))
        elif isinstance(current, (list, tuple)):
            stack.extend(current)
        elif isinstance(current, dict):
            stack.extend(current.values())
    return False


def statement_param_count(stmt: A.Statement) -> int:
    """Highest ``$n`` used anywhere in a SELECT / INSERT / UPDATE / DELETE
    statement (0 when parameter-free).  PREPARE uses this to derive the
    parameter count a later EXECUTE must supply."""
    if isinstance(stmt, A.SelectStmt):
        return max_param_index(stmt)
    if isinstance(stmt, A.Insert):
        return max_param_index(stmt.source)
    best = 0

    def scan(expr: Optional[A.Expr]) -> None:
        nonlocal best
        if expr is None:
            return
        for node in walk_expr(expr):
            if isinstance(node, A.Param):
                best = max(best, node.index)
            for _, sub in _subquery_fields(node):
                best = max(best, max_param_index(sub))

    if isinstance(stmt, A.Update):
        for _, expr in stmt.assignments:
            scan(expr)
        scan(stmt.where)
        return best
    if isinstance(stmt, A.Delete):
        scan(stmt.where)
        return best
    return 0


def _walk_select(stmt: A.SelectStmt, visitor) -> None:
    def do_body(body):
        if isinstance(body, A.SetOp):
            do_body(body.left)
            do_body(body.right)
            return
        if isinstance(body, A.ValuesClause):
            for row in body.rows:
                for e in row:
                    visitor.visit(e)
            return
        core: A.SelectCore = body
        for item in core.items:
            if isinstance(item, A.SelectItem):
                visitor.visit(item.expr)
        do_table(core.from_clause)
        if core.where is not None:
            visitor.visit(core.where)
        for e in core.group_by:
            visitor.visit(e)
        if core.having is not None:
            visitor.visit(core.having)
        for spec in core.windows.values():
            for e in spec.partition_by:
                visitor.visit(e)
            for s in spec.order_by:
                visitor.visit(s.expr)

    def do_table(ref):
        if ref is None:
            return
        if isinstance(ref, A.SubqueryRef):
            _walk_select(ref.query, visitor)
        elif isinstance(ref, A.Join):
            do_table(ref.left)
            do_table(ref.right)
            if ref.condition is not None:
                visitor.visit(ref.condition)

    if stmt.with_clause is not None:
        for cte in stmt.with_clause.ctes:
            _walk_select(cte.query, visitor)
    do_body(stmt.body)
    for s in stmt.order_by:
        visitor.visit(s.expr)
    if stmt.limit is not None:
        visitor.visit(stmt.limit)
    if stmt.offset is not None:
        visitor.visit(stmt.offset)
