"""A lexer shared by the SQL parser and the PL/pgSQL parser.

Produces a flat list of :class:`Token` objects.  Keywords are not
distinguished from identifiers at the lexing stage — parsers match identifier
tokens case-insensitively — which keeps the keyword set extensible and lets
the two parsers disagree about what is reserved.

Supported lexical forms:

* bare identifiers (lower-cased, SQL-style folding),
* quoted identifiers ``"call?"`` (case preserved, may contain any character),
* string literals ``'it''s'`` with doubled-quote escaping,
* dollar-quoted strings ``$$ ... $$`` and ``$tag$ ... $tag$`` (used for
  function bodies),
* integer and float literals (``1``, ``3.14``, ``1e-9``; ``1..n`` lexes as
  ``1`` ``..`` ``n`` for PL/pgSQL FOR ranges),
* positional parameters ``$1``,
* operators and punctuation including ``::``, ``:=``, ``..``, ``||``,
  ``<=``, ``>=``, ``<>``, ``!=``,
* ``--`` line comments and nested ``/* */`` block comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ParseError

# Token types
IDENT = "IDENT"        # bare identifier, value lower-cased
QIDENT = "QIDENT"      # quoted identifier, value as written
NUMBER = "NUMBER"      # value is int or float
STRING = "STRING"      # value is the unescaped string
PARAM = "PARAM"        # $1 style positional parameter, value is int index
OP = "OP"              # operator or punctuation, value is the operator text
EOF = "EOF"

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "::", ":=", "..", "||", "<=", ">=", "<>", "!=", "=>",
    "(", ")", ",", ";", ".", "=", "<", ">", "+", "-", "*", "/", "%", "^",
    "[", "]", ":",
]


@dataclass(frozen=True)
class Token:
    type: str
    value: object
    line: int
    column: int

    def matches_keyword(self, keyword: str) -> bool:
        """True when this token is the bare identifier *keyword* (any case)."""
        return self.type == IDENT and self.value == keyword.lower()

    def __repr__(self) -> str:  # compact, for parser error messages
        return f"{self.type}:{self.value!r}"


def tokenize(text: str) -> list[Token]:
    """Lex *text* into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def col(pos: int) -> int:
        return pos - line_start + 1

    def error(message: str, pos: int):
        raise ParseError(message, line, col(pos))

    while i < n:
        ch = text[i]
        # Whitespace ----------------------------------------------------
        if ch in " \t\r":
            i += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            line_start = i
            continue
        # Comments ------------------------------------------------------
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        if ch == "/" and text.startswith("/*", i):
            depth = 1
            j = i + 2
            while j < n and depth:
                if text.startswith("/*", j):
                    depth += 1
                    j += 2
                elif text.startswith("*/", j):
                    depth -= 1
                    j += 2
                else:
                    if text[j] == "\n":
                        line += 1
                        line_start = j + 1
                    j += 1
            if depth:
                error("unterminated block comment", i)
            i = j
            continue
        # String literal --------------------------------------------------
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    error("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    j += 1
                    break
                if text[j] == "\n":
                    line += 1
                    line_start = j + 1
                parts.append(text[j])
                j += 1
            tokens.append(Token(STRING, "".join(parts), line, col(i)))
            i = j
            continue
        # Quoted identifier ----------------------------------------------
        if ch == '"':
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    error("unterminated quoted identifier", i)
                if text[j] == '"':
                    if j + 1 < n and text[j + 1] == '"':
                        parts.append('"')
                        j += 2
                        continue
                    j += 1
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(QIDENT, "".join(parts), line, col(i)))
            i = j
            continue
        # Dollar quoting / positional parameters --------------------------
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j < n and text[j] == "$":
                tag = text[i:j + 1]  # e.g. "$$" or "$body$"
                end = text.find(tag, j + 1)
                if end == -1:
                    error(f"unterminated dollar-quoted string {tag}", i)
                body = text[j + 1:end]
                line += body.count("\n")
                if "\n" in body:
                    line_start = j + 1 + body.rfind("\n") + 1
                tokens.append(Token(STRING, body, line, col(i)))
                i = end + len(tag)
                continue
            digits = text[i + 1:j]
            if digits.isdigit():
                tokens.append(Token(PARAM, int(digits), line, col(i)))
                i = j
                continue
            error("unexpected character '$'", i)
        # Numbers ---------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and text[j].isdigit():
                j += 1
            is_float = False
            # A '.' begins a fraction only if NOT followed by another '.'
            # (so "1..n" lexes as NUMBER OP OP-range).
            if j < n and text[j] == "." and not text.startswith("..", j):
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
            literal = text[i:j]
            value = float(literal) if is_float else int(literal)
            tokens.append(Token(NUMBER, value, line, col(i)))
            i = j
            continue
        # Identifiers -------------------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(IDENT, text[i:j].lower(), line, col(i)))
            i = j
            continue
        # Operators ----------------------------------------------------------
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(OP, op, line, col(i)))
                i += len(op)
                break
        else:
            error(f"unexpected character {ch!r}", i)
    tokens.append(Token(EOF, None, line, col(i)))
    return tokens


class TokenStream:
    """Cursor over a token list with the lookahead helpers parsers need."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    @classmethod
    def from_text(cls, text: str) -> "TokenStream":
        return cls(tokenize(text))

    # -- inspection ----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def at_end(self) -> bool:
        return self.peek().type == EOF

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.type == IDENT and token.value in {k.lower() for k in keywords}

    def at_op(self, *ops: str) -> bool:
        token = self.peek()
        return token.type == OP and token.value in ops

    def save(self) -> int:
        return self._pos

    def restore(self, mark: int) -> None:
        self._pos = mark

    # -- consumption ---------------------------------------------------
    def advance(self) -> Token:
        token = self.peek()
        if token.type != EOF:
            self._pos += 1
        return token

    def accept_keyword(self, *keywords: str) -> Token | None:
        if self.at_keyword(*keywords):
            return self.advance()
        return None

    def accept_op(self, *ops: str) -> Token | None:
        if self.at_op(*ops):
            return self.advance()
        return None

    def expect_keyword(self, keyword: str) -> Token:
        if not self.at_keyword(keyword):
            token = self.peek()
            raise ParseError(f"expected {keyword.upper()}, found {token}",
                             token.line, token.column)
        return self.advance()

    def expect_op(self, op: str) -> Token:
        if not self.at_op(op):
            token = self.peek()
            raise ParseError(f"expected {op!r}, found {token}", token.line, token.column)
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> str:
        """Consume a bare or quoted identifier and return its name."""
        token = self.peek()
        if token.type == IDENT:
            self.advance()
            return str(token.value)
        if token.type == QIDENT:
            self.advance()
            return str(token.value)
        raise ParseError(f"expected {what}, found {token}", token.line, token.column)
