"""``repro.sql`` — the relational engine substrate.

A from-scratch, in-memory SQL engine with the architecture the paper's cost
analysis presumes: cached immutable plans, per-execution instantiation
(ExecutorStart) and teardown (ExecutorEnd), lateral nested-loop joins,
window functions, and ``WITH [RECURSIVE | ITERATE]`` evaluation with
buffer-page accounting.
"""

from .engine import Database, Result
from .errors import (CatalogError, CompileError, ExecutionError,
                     LoopNotSupportedError, NameResolutionError, ParseError,
                     PlanError, PlsqlError, PlsqlRuntimeError,
                     SerializationError, SettingError, SqlError, TypeError_)
from .session import Connection, Cursor, PreparedStatement
from .values import Row, Value

__all__ = [
    "Database", "Result", "Row", "Value",
    "Connection", "Cursor", "PreparedStatement",
    "SqlError", "ParseError", "NameResolutionError", "PlanError",
    "ExecutionError", "TypeError_", "CatalogError", "PlsqlError",
    "PlsqlRuntimeError", "CompileError", "LoopNotSupportedError",
    "SerializationError", "SettingError",
]
