"""The schema catalog: tables, composite types, and the function registry.

Functions come in four flavours, mirroring the paper's cast of characters:

* **builtin** — engine-provided scalars (``sign``, ``substr``, ``random``, ...),
* **sql** — ``LANGUAGE SQL`` user-defined functions (the paper's UDF stage);
  their body is a single SELECT evaluated per call, *with* plan
  instantiation cost — which is exactly why the paper does not stop there,
* **plpgsql** — interpreted PL/pgSQL functions (the baseline; every call is a
  ``Q→f`` context switch),
* **compiled** — the product of the paper's pipeline: a parameterised pure-SQL
  query that the planner inlines at the call site so the whole thing is
  planned once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from . import ast as A
from .errors import CatalogError, NameResolutionError
from .storage import BufferManager, HeapTable
from .types import CompositeType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass


@dataclass
class IndexDef:
    """A declared sorted index (``CREATE INDEX``): names the
    :class:`~repro.sql.storage.SortedIndex` pinned on its table.  Lazily
    auto-created indexes (range scans) have no IndexDef — only declared
    ones are droppable by name."""

    name: str
    table: str
    column_names: list[str]
    columns: tuple[int, ...]
    descending: tuple[bool, ...]


@dataclass
class FunctionDef:
    """A registered function.

    Exactly one of the payload fields is populated, according to ``kind``:
    ``builtin`` uses ``impl``; ``sql`` and ``plpgsql`` use ``body`` (source
    text, parsed lazily and cached by the respective front end); ``compiled``
    uses ``query`` — a SELECT AST with :class:`repro.sql.ast.Param` holes,
    one per parameter, that the planner inlines as a correlated subplan.
    """

    name: str
    kind: str  # 'builtin' | 'sql' | 'plpgsql' | 'compiled'
    param_names: list[str] = field(default_factory=list)
    param_types: list[str] = field(default_factory=list)
    return_type: str = "int"
    impl: Optional[Callable] = None
    body: Optional[str] = None
    query: Optional[A.SelectStmt] = None
    #: Set-oriented variant of ``query`` for compiled functions: a batched
    #: Qf reading its arguments from a ``__batch_input(k, <params>)``
    #: relation so the planner can advance a whole relation of calls in one
    #: trampoline (see repro.compiler.template.build_batched_template_query).
    #: None when the function is loop-free or volatile — those stay on the
    #: per-row scalar path.
    batched_query: Optional[A.SelectStmt] = None
    batch_columns: list[str] = field(default_factory=list)
    #: The same trampoline as explicit transition rules (the batched
    #: template's machine form; repro.compiler.template.BatchedMachine).
    #: The BatchedUdf operator's default strategy evaluates this directly.
    batch_machine: object = None
    #: Volatility class declared in CREATE FUNCTION (IMMUTABLE/STABLE/
    #: VOLATILE), or None when omitted — then the analyzer's inference
    #: (``inferred_volatility``) is authoritative.
    declared_volatility: Optional[str] = None
    #: Parsed PL/pgSQL body (repro.plsql.ast.PlsqlFunctionDef) for the
    #: static analyzer: compiled functions keep the pipeline's source here,
    #: plpgsql functions cache a parse of ``body`` on first analysis.
    #: Distinct from ``parsed_body``, which the interpreter claims for its
    #: FunctionRuntime cache.
    plsql_source: object = None
    # Caches populated by front ends on first use:
    parsed_body: object = None
    #: Plan-time cache for the batched query: ``(batch CteDef, Plan)``,
    #: shared across call sites and reset by Database.clear_plan_cache().
    batched_plan: object = None
    #: Facts cached by the static analyzer (repro.analysis.volatility):
    #: inferred volatility class, whether the body may raise at run time,
    #: and whether it contains loops.  None until inferred; reset together
    #: with the plan caches.
    inferred_volatility: Optional[str] = None
    inferred_may_raise: Optional[bool] = None
    inferred_has_loops: Optional[bool] = None

    @property
    def arity(self) -> int:
        return len(self.param_names)

    @property
    def volatility(self) -> Optional[str]:
        """Effective volatility: the declared class wins over inference."""
        return self.declared_volatility or self.inferred_volatility

    def reset_analysis(self) -> None:
        """Forget inferred facts (schema or body may have changed)."""
        self.inferred_volatility = None
        self.inferred_may_raise = None
        self.inferred_has_loops = None


class Catalog:
    """All schema objects of one :class:`~repro.sql.engine.Database`."""

    def __init__(self, buffers: BufferManager, txnman=None):
        self._buffers = buffers
        #: Shared transaction manager handed to every HeapTable so all
        #: heaps of one database stamp versions against the same xid
        #: space (None: each table runs its own frozen-only manager).
        self._txnman = txnman
        self.tables: dict[str, HeapTable] = {}
        self.composite_types: dict[str, CompositeType] = {}
        self.functions: dict[str, FunctionDef] = {}
        self.indexes: dict[str, IndexDef] = {}

    # -- tables ----------------------------------------------------------
    def create_table(self, name: str, column_names, column_types,
                     if_not_exists: bool = False) -> HeapTable:
        key = name.lower()
        if key in self.tables:
            if if_not_exists:
                return self.tables[key]
            raise CatalogError(f"table {name!r} already exists")
        table = HeapTable(key, column_names, column_types, self._buffers,
                          self._txnman)
        self.tables[key] = table
        return table

    def get_table(self, name: str) -> HeapTable:
        table = self.tables.get(name.lower())
        if table is None:
            raise NameResolutionError(f"unknown table {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def estimate_rows(self, name: str, default: int = 1000) -> int:
        """Cardinality estimate for *name*, or *default* when unknown
        (subqueries, CTEs, missing tables).  Feeds the planner's
        hash-join build-side choice."""
        table = self.tables.get(name.lower())
        return table.estimate_rows() if table is not None else default

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise CatalogError(f"unknown table {name!r}")
        del self.tables[key]
        self.indexes = {index_name: index
                        for index_name, index in self.indexes.items()
                        if index.table != key}

    # -- indexes -----------------------------------------------------------
    def create_index(self, name: str, table_name: str,
                     columns: list[tuple[str, bool]],
                     if_not_exists: bool = False
                     ) -> Optional[tuple[IndexDef, bool]]:
        """Declare (and eagerly build) a sorted index over *columns* — a
        list of ``(column name, descending)`` pairs.  Returns the IndexDef
        plus whether a new SortedIndex structure was actually built (False
        when a lazily auto-created one with the same key already existed),
        or None when the index exists and *if_not_exists* was given."""
        key = name.lower()
        if key in self.indexes:
            if if_not_exists:
                return None
            raise CatalogError(f"index {name!r} already exists")
        table = self.get_table(table_name)
        positions = tuple(table.column_index(column) for column, _ in columns)
        descending = tuple(bool(desc) for _, desc in columns)
        if len(set(positions)) != len(positions):
            raise CatalogError(f"index {name!r}: duplicate key columns")
        built = table.sorted_index_if_exists(positions, descending) is None
        table.sorted_index(positions, descending).pinned = True
        index_def = IndexDef(key, table.name,
                             [column.lower() for column, _ in columns],
                             positions, descending)
        self.indexes[key] = index_def
        return index_def, built

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        index_def = self.indexes.pop(key, None)
        if index_def is None:
            if if_exists:
                return
            raise CatalogError(f"unknown index {name!r}")
        # Several declared indexes may share one SortedIndex structure
        # (same table, columns and directions); drop it only when the last
        # declaration referencing it goes away.
        still_declared = any(
            other.table == index_def.table
            and other.columns == index_def.columns
            and other.descending == index_def.descending
            for other in self.indexes.values())
        table = self.tables.get(index_def.table)
        if table is not None and not still_declared:
            table.drop_sorted_index(index_def.columns, index_def.descending)

    # -- composite types ---------------------------------------------------
    def create_type(self, name: str, field_names, field_types) -> CompositeType:
        key = name.lower()
        if key in self.composite_types:
            raise CatalogError(f"type {name!r} already exists")
        ctype = CompositeType(key, tuple(f.lower() for f in field_names),
                              tuple(field_types))
        self.composite_types[key] = ctype
        return ctype

    def get_type(self, name: str) -> CompositeType | None:
        return self.composite_types.get(name.lower())

    # -- functions ---------------------------------------------------------
    def register_function(self, fdef: FunctionDef, replace: bool = False) -> None:
        key = fdef.name.lower()
        if key in self.functions and not replace:
            raise CatalogError(f"function {fdef.name!r} already exists")
        self.functions[key] = fdef

    def get_function(self, name: str) -> FunctionDef | None:
        return self.functions.get(name.lower())

    def drop_function(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.functions:
            if if_exists:
                return
            raise CatalogError(f"unknown function {name!r}")
        del self.functions[key]
