"""The query planner: SQL AST -> immutable executable plan trees.

Planning does all name resolution and expression compilation once; the
resulting :class:`~repro.sql.executor.base.Plan` tree is immutable and can be
cached by SQL text (see :mod:`repro.sql.engine`).  Execution then only pays
*instantiation* (ExecutorStart) and *pulling* (ExecutorRun) — the cost split
the paper's Table 1 measures.

Highlights:

* FROM clauses plan into shared-row-vector nested loops with LATERAL rebinds
  (executor/fromtree.py),
* ``WITH [RECURSIVE | ITERATE]`` splits each self-referencing CTE into base
  and recursive terms (executor/recursion.py),
* calls to *compiled* functions (the output of the paper's pipeline) are
  inlined at plan time as correlated scalar subqueries — the "merge Qf into
  Q" finalization step,
* FROM subqueries whose alias lists more columns than the subquery produces
  trigger the ROW-expansion extension used by the CTE template.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from . import ast as A
from .astutil import (column_bindings, conjoin, contains_aggregate,
                      contains_window_call, expr_equal, split_conjuncts)
from .errors import NameResolutionError, PlanError
from .expr import ExprCompiler, Relation, Scope
from .executor.base import Plan
from .executor.batched_udf import (BatchedUdfStagePlan, SqlCallPlan,
                                   compile_machine)
from .executor.fromtree import FromJoinPlan, FromLeafPlan, FromNodePlan
from .executor.hashjoin import HashJoinPlan
from .executor.mergejoin import MergeJoinPlan
from .executor.recursion import CteDef, CTEScanPlan, SelectStmtPlan
from .executor.scan import (IndexRangeScanPlan, OneRowPlan, RowExpandPlan,
                            SeqScanPlan, ValuesPlan)
from .executor.select_core import (AggCallPlan, AggStagePlan, SelectCorePlan,
                                   TopNPlan, WindowStagePlan)
from .executor.tuples import AppendPlan, LimitPlan, SetOpPlan, SortPlan
from .executor.vector import vectorize_core
from .executor.window import WindowCallPlan
from .functions import is_aggregate_name, is_window_function_name

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Database


class CteEnv:
    """Plan-time chain of visible CTE definitions."""

    def __init__(self, parent: Optional["CteEnv"] = None):
        self.parent = parent
        self.defs: dict[str, CteDef] = {}

    def lookup(self, name: str) -> Optional[CteDef]:
        node: Optional[CteEnv] = self
        while node is not None:
            found = node.defs.get(name.lower())
            if found is not None:
                return found
            node = node.parent
        return None


class _JoinDraft:
    """A join captured during FROM planning, before strategy choice.

    ``condition`` is the raw ON expression (AST, not yet compiled);
    :meth:`Planner._finalize_from` later decides per node whether the join
    runs as a hash join or a nested loop and compiles accordingly.
    ``prefix_len`` records how many relations were in scope when the join
    was reached — ON conditions must not see later FROM items, so they are
    analyzed and compiled against this prefix (see ``_prefix_scope``).
    """

    __slots__ = ("kind", "left", "right", "condition", "prefix_len")

    def __init__(self, kind: str, left, right, condition: Optional[A.Expr],
                 prefix_len: int):
        self.kind = kind
        self.left = left
        self.right = right
        self.condition = condition
        self.prefix_len = prefix_len

    @property
    def rel_slots(self) -> list[tuple[int, int]]:
        return self.left.rel_slots + self.right.rel_slots


#: Cardinality assumed for relations without statistics (subqueries, CTEs).
_DEFAULT_CARDINALITY = 1000


class Planner:
    """Plans SELECT statements against a database's catalog."""

    def __init__(self, db: "Database"):
        self.db = db
        #: Inline compiled functions at call sites (the paper's default).
        #: Disable to measure the cost of calling them like ordinary UDFs.
        self.inline_compiled = True
        #: Plan equi-joins as build/probe hash joins (executor/hashjoin.py).
        #: Disable to force the seed nested-loop path.  Flags are consulted
        #: at plan time only — call ``Database.clear_plan_cache()`` after
        #: toggling, or cached plans keep their old strategy.
        self.enable_hashjoin = True
        #: Push single-relation WHERE conjuncts down to the scans that bind
        #: them, and promote cross-join equality conjuncts to join keys.
        self.enable_pushdown = True
        #: Evaluate select-list calls to compiled functions set-oriented:
        #: one batched trampoline per call site over all surviving rows
        #: (executor/batched_udf.py) instead of one correlated scalar
        #: subquery per row.  Volatile arguments, volatile bodies, and
        #: loop-free functions always keep the scalar path.
        self.batch_compiled = True
        #: How the BatchedUdf operator evaluates the trampoline:
        #: "machine" runs the batched template's transition rules as
        #: compiled closures over the working set; "sql" plans the batched
        #: Qf and runs it through the generic recursive-CTE executor.
        #: Both produce identical results (differentially tested).
        self.batch_strategy = "machine"
        #: Share one trampoline activation between rows with identical
        #: argument vectors (sound: batching requires non-volatile
        #: functions).  Turn off to measure the raw trampoline.
        self.batch_dedup = True
        #: Ordered access paths.  ``enable_rangescan``: push range
        #: conjuncts (< <= > >= BETWEEN) on a base-table column into a
        #: bisect-backed IndexRangeScan.  ``enable_sort_elim``: skip the
        #: Sort when an existing sorted index already delivers the ORDER
        #: BY.  ``enable_topn``: bounded heap for constant ORDER BY ..
        #: LIMIT when no index applies.  ``enable_mergejoin``: merge join
        #: when both inner-equi-join inputs are index-ordered on the key.
        #: All are plan-time choices — clear_plan_cache() after toggling.
        self.enable_rangescan = True
        self.enable_sort_elim = True
        self.enable_topn = True
        self.enable_mergejoin = True
        #: Batch-at-a-time execution of single-table SELECT cores: pull
        #: column batches straight off the heap and evaluate batch-compiled
        #: predicates/projections/aggregations in tight loops
        #: (executor/vector.py) instead of per-row closure dispatch.
        #: Plan-time choice — clear_plan_cache() after toggling.
        self.enable_vectorize = True
        self._cte_env: Optional[CteEnv] = None
        #: Nesting depth of expression subqueries (EXISTS / IN / scalar)
        #: currently being planned.  Those consumers stop pulling rows
        #: early, so eager batching inside them could evaluate calls the
        #: lazy scalar path never reaches (see _plan_query_tail's LIMIT
        #: note); ExprCompiler._plan_subquery maintains the counter.
        self.expr_subquery_depth = 0

    @property
    def catalog(self):
        return self.db.catalog

    # ------------------------------------------------------------------
    # Statement level
    # ------------------------------------------------------------------

    def plan_select(self, stmt: A.SelectStmt,
                    outer_scope: Optional[Scope] = None,
                    cte_env: Optional[CteEnv] = None) -> Plan:
        saved_env = self._cte_env
        env = cte_env if cte_env is not None else self._cte_env
        cte_defs: list[CteDef] = []
        try:
            if stmt.with_clause is not None:
                env = CteEnv(parent=env)
                for cte in stmt.with_clause.ctes:
                    cte_def = self._plan_cte(cte, stmt.with_clause, env,
                                             outer_scope)
                    env.defs[cte.name.lower()] = cte_def
                    cte_defs.append(cte_def)
            self._cte_env = env
            plan = self._plan_query_tail(stmt, outer_scope)
        finally:
            self._cte_env = saved_env
        if cte_defs:
            plan = SelectStmtPlan(cte_defs, plan)
        return plan

    def _plan_query_tail(self, stmt: A.SelectStmt,
                         outer_scope: Optional[Scope]) -> Plan:
        """Plan body + ORDER BY + LIMIT (CTE env already in effect)."""
        body = stmt.body
        # A streaming LIMIT/OFFSET (no ORDER BY) may legitimately never
        # evaluate the tail rows' expressions; batching is eager over all
        # surviving rows, so those statements keep the lazy scalar path.
        # With ORDER BY the sort materializes every projected row anyway,
        # so batching there changes nothing observable.
        limited = stmt.limit is not None or stmt.offset is not None
        allow_batch = not limited or bool(stmt.order_by)
        if isinstance(body, A.SelectCore):
            plan = self._plan_core(body, outer_scope, stmt.order_by,
                                   allow_batch=allow_batch)
        else:
            plan = self._plan_set_body(body, outer_scope,
                                       allow_batch=allow_batch)
            if stmt.order_by:
                plan = self._sort_set_output(plan, stmt.order_by)
        if stmt.limit is not None or stmt.offset is not None:
            compiler = ExprCompiler(Scope([], parent=outer_scope), self)
            limit = compiler.compile(stmt.limit) if stmt.limit is not None else None
            offset = (compiler.compile(stmt.offset)
                      if stmt.offset is not None else None)
            # Top-N: a constant LIMIT (+OFFSET) over a sort keeps only the
            # best limit+offset rows in a bounded heap instead of sorting
            # the whole input.  (When sort elimination already removed the
            # Sort, the streaming LimitPlan alone stops after k rows.)
            count = _constant_topn_count(stmt)
            if (self.enable_topn and count is not None
                    and isinstance(plan, SortPlan)):
                plan = TopNPlan(plan, count)
            plan = LimitPlan(plan, limit, offset, compiler.subplans)
        return plan

    def _plan_set_body(self, body, outer_scope: Optional[Scope],
                       allow_batch: bool = True) -> Plan:
        if isinstance(body, A.SelectCore):
            return self._plan_core(body, outer_scope, [],
                                   allow_batch=allow_batch)
        if isinstance(body, A.ValuesClause):
            return self._plan_values(body, outer_scope)
        if isinstance(body, A.SetOp):
            left = self._plan_set_body(body.left, outer_scope, allow_batch)
            right = self._plan_set_body(body.right, outer_scope, allow_batch)
            if left.width != right.width:
                raise PlanError(
                    f"set operation arms have different widths "
                    f"({left.width} vs {right.width})")
            if body.op == "union_all":
                # Flatten chains of UNION ALL into one Append.
                parts: list[Plan] = []
                for part in (left, right):
                    if isinstance(part, AppendPlan):
                        parts.extend(part.parts)
                    else:
                        parts.append(part)
                return AppendPlan(parts, left.output_columns)
            return SetOpPlan(body.op, left, right, left.output_columns)
        raise PlanError(f"unsupported select body {type(body).__name__}")

    def _plan_values(self, values: A.ValuesClause,
                     outer_scope: Optional[Scope]) -> Plan:
        if not values.rows:
            raise PlanError("VALUES requires at least one row")
        width = len(values.rows[0])
        for row in values.rows:
            if len(row) != width:
                raise PlanError("VALUES rows have varying widths")
        compiler = ExprCompiler(Scope([], parent=outer_scope), self)
        compiled = [[compiler.compile(cell) for cell in row]
                    for row in values.rows]
        columns = [f"column{i + 1}" for i in range(width)]
        return ValuesPlan(compiled, columns, compiler.subplans)

    def _sort_set_output(self, plan: Plan, order_by: list[A.SortItem]) -> Plan:
        indices: list[int] = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, A.Literal) and isinstance(expr.value, int) \
                    and not isinstance(expr.value, bool):
                position = expr.value
                if not 1 <= position <= plan.width:
                    raise PlanError(f"ORDER BY position {position} is out of range")
                indices.append(position - 1)
            elif isinstance(expr, A.ColumnRef) and len(expr.parts) == 1 \
                    and expr.parts[0].lower() in [c.lower() for c in plan.output_columns]:
                indices.append([c.lower() for c in plan.output_columns]
                               .index(expr.parts[0].lower()))
            else:
                raise PlanError("ORDER BY over a set operation must reference "
                                "output columns by name or position")
        return SortPlan(plan, plan.output_columns, key_start=plan.width,
                        descending=[i.descending for i in order_by],
                        nulls_first=[i.nulls_first for i in order_by],
                        strip=False, key_indices=indices)

    # ------------------------------------------------------------------
    # CTE planning
    # ------------------------------------------------------------------

    def _plan_cte(self, cte: A.CommonTableExpr, with_clause: A.WithClause,
                  env: CteEnv, outer_scope: Optional[Scope]) -> CteDef:
        name = cte.name.lower()
        cte_def = CteDef(name, list(cte.column_names or []))
        self_referencing = (with_clause.recursive
                            and _references_table(cte.query, name))
        if not self_referencing:
            plan = self.plan_select(cte.query, outer_scope, cte_env=env)
            cte_def.plan = plan
            cte_def.columns = _apply_column_aliases(
                cte.name, plan.output_columns, cte.column_names)
            return cte_def

        body = cte.query.body
        if not isinstance(body, A.SetOp) or body.op not in ("union", "union_all"):
            raise PlanError(
                f"recursive CTE {cte.name!r} must be <base> UNION [ALL] "
                "<recursive term>")
        if cte.query.order_by or cte.query.limit is not None:
            raise PlanError("ORDER BY / LIMIT on a recursive CTE body is not "
                            "supported")
        # Flatten the UNION [ALL] chain; terms referencing the CTE are
        # recursive terms (we allow several — an extension over PostgreSQL's
        # single-self-reference rule), the rest form the base.
        op = body.op
        terms = _flatten_union(body, op, cte.name)
        base_terms = [t for t in terms
                      if not _body_references_table(t, name)]
        rec_terms = [t for t in terms if _body_references_table(t, name)]
        if not base_terms:
            raise PlanError(f"recursive CTE {cte.name!r} needs a base term "
                            "without a self-reference")
        cte_def.recursive = True
        cte_def.union_all = op == "union_all"
        cte_def.iterate = with_clause.iterate
        # Base terms: planned without the self-binding in scope.
        base_plans = [self.plan_select(A.SelectStmt(None, t), outer_scope,
                                       cte_env=env) for t in base_terms]
        cte_def.base_plan = (base_plans[0] if len(base_plans) == 1 else
                             AppendPlan(base_plans,
                                        base_plans[0].output_columns))
        cte_def.columns = _apply_column_aliases(
            cte.name, cte_def.base_plan.output_columns, cte.column_names)
        # Recursive terms: planned with the self-binding visible.
        rec_env = CteEnv(parent=env)
        rec_env.defs[name] = cte_def
        rec_plans = [self.plan_select(A.SelectStmt(None, t), outer_scope,
                                      cte_env=rec_env) for t in rec_terms]
        cte_def.rec_plan = (rec_plans[0] if len(rec_plans) == 1 else
                            AppendPlan(rec_plans, rec_plans[0].output_columns))
        for plan in base_plans + rec_plans:
            if plan.width != cte_def.base_plan.width:
                raise PlanError(
                    f"recursive CTE {cte.name!r}: union terms have "
                    "differing column counts")
        return cte_def

    # ------------------------------------------------------------------
    # SELECT core planning
    # ------------------------------------------------------------------

    def _plan_core(self, core: A.SelectCore, outer_scope: Optional[Scope],
                   order_by: list[A.SortItem],
                   allow_batch: bool = True) -> Plan:
        relations: list[Relation] = []
        from_node = None
        if core.from_clause is not None:
            from_node = self._plan_from(core.from_clause, relations, outer_scope)
        scope = Scope(relations, parent=outer_scope)

        # Index pushdown: correlated equality predicates on a single base
        # table become hash-index probes (see IndexScanPlan).
        residual_where = core.where
        if (core.where is not None and isinstance(from_node, FromLeafPlan)
                and isinstance(from_node.source, SeqScanPlan)
                and not from_node.lateral):
            from_node, residual_where = self._try_index_pushdown(
                core.where, from_node, scope)

        # Join strategy + predicate pushdown: distribute WHERE conjuncts
        # over the FROM tree and pick hash vs nested loop per join.
        from_plan: Optional[FromNodePlan] = None
        if from_node is not None:
            from_plan, residual_where = self._finalize_from(
                from_node, residual_where, scope)

        # WHERE --------------------------------------------------------
        where_compiler = ExprCompiler(scope, self)
        where = (where_compiler.compile(residual_where)
                 if residual_where is not None else None)

        # Select items: expand stars, derive output names ----------------
        items: list[A.SelectItem] = []
        for item in core.items:
            if isinstance(item, A.Star):
                items.extend(self._expand_star(item, relations))
            else:
                items.append(item)
        if not items:
            raise PlanError("SELECT list is empty")
        output_columns = [_derive_name(item) for item in items]
        item_exprs = [item.expr for item in items]
        having = core.having

        # Aggregation ----------------------------------------------------
        agg_stage: Optional[AggStagePlan] = None
        agg_rewrite = None
        current_scope = scope
        needs_agg = bool(core.group_by) or having is not None \
            or any(contains_aggregate(e) for e in item_exprs)
        if needs_agg:
            (agg_stage, item_exprs, having, current_scope,
             agg_rewrite) = self._plan_aggregation(
                core, scope, outer_scope, item_exprs, having)
        elif having is not None:
            raise PlanError("HAVING requires aggregation")

        # Window functions -----------------------------------------------
        window_stage: Optional[WindowStagePlan] = None
        if any(contains_window_call(e) for e in item_exprs):
            window_stage, item_exprs, current_scope = self._plan_windows(
                core, current_scope, outer_scope, item_exprs, agg_rewrite)

        # Set-oriented compiled-UDF calls ---------------------------------
        # Only calls over a FROM clause batch: a table-less SELECT is a
        # single activation, and several paper artifacts (Table 2's page
        # writes, the ITERATE ablation) measure exactly the generic
        # recursive-CTE behaviour of that scalar form.
        batch_stage: Optional[BatchedUdfStagePlan] = None
        if allow_batch and self.expr_subquery_depth == 0 \
                and self.batch_compiled and self.inline_compiled \
                and from_plan is not None:
            batch_stage, item_exprs, current_scope = self._plan_batched_udfs(
                item_exprs, current_scope, outer_scope)

        # Sort elimination -------------------------------------------------
        # A single base-table FROM whose scan can come from a sorted index
        # in the requested order drops the Sort node entirely.  The block
        # stays streaming, so an enclosing LIMIT stops pulling after k
        # rows — ORDER BY .. LIMIT over an index costs O(log n + k).
        sort_eliminated = False
        if (order_by and self.enable_sort_elim and not core.distinct
                and agg_stage is None and window_stage is None
                and isinstance(from_plan, FromLeafPlan)
                and not from_plan.lateral):
            sort_eliminated = self._eliminate_sort(order_by, items,
                                                   from_plan, scope)

        # Final projection (+ hidden ORDER BY keys) -----------------------
        project_compiler = ExprCompiler(current_scope, self)
        project_exprs = [project_compiler.compile(e) for e in item_exprs]
        hidden = ([] if sort_eliminated else
                  self._compile_order_keys(order_by, items, project_exprs,
                                           project_compiler, core.distinct))
        plan: Plan = SelectCorePlan(
            output_columns=output_columns,
            n_relations=len(relations),
            from_plan=from_plan,
            where=where,
            where_subplans=where_compiler.subplans,
            agg_stage=agg_stage,
            window_stage=window_stage,
            project_exprs=project_exprs + hidden,
            project_subplans=project_compiler.subplans,
            distinct=core.distinct and not hidden,
            batch_stage=batch_stage,
        )
        # Vectorization: a single-table SELECT core still on a plain
        # SeqScan (index pushdown, range scans and sort elimination keep
        # the row path) with no ORDER BY / window / batched-UDF stage can
        # run batch-at-a-time.  The WHERE clause is batch-compiled from
        # the *original* AST — predicate pushdown split it between leaf
        # filter and residual, and for pure predicates the conjunction is
        # equivalent.  vectorize_core returns None when any expression is
        # outside the supported subset, keeping this plan unchanged.
        if (not order_by and self.enable_vectorize
                and window_stage is None and batch_stage is None
                and len(relations) == 1
                and isinstance(from_plan, FromLeafPlan)
                and not from_plan.lateral
                and isinstance(from_plan.source, SeqScanPlan)):
            vectorized = vectorize_core(plan, core, item_exprs, scope,
                                        from_plan.source.table_name)
            if vectorized is not None:
                plan = vectorized
        if hidden:
            # DISTINCT with hidden keys was rejected in _compile_order_keys,
            # so stripping the keys after the sort is always safe here.
            plan.output_columns = output_columns + [f"__sort{i}"
                                                    for i in range(len(hidden))]
            plan = SortPlan(plan, output_columns, key_start=len(items),
                            descending=[i.descending for i in order_by],
                            nulls_first=[i.nulls_first for i in order_by],
                            strip=True)
        elif order_by and not sort_eliminated:
            plan = SortPlan(plan, output_columns, key_start=len(items),
                            descending=[i.descending for i in order_by],
                            nulls_first=[i.nulls_first for i in order_by],
                            strip=False,
                            key_indices=self._positional_keys(order_by, items))
        return plan

    def _positional_keys(self, order_by, items) -> list[int]:
        # Only reached when _compile_order_keys produced no hidden keys,
        # i.e. every sort item is positional or an alias.
        indices = []
        aliases = [(_derive_name(i) or "").lower() for i in items]
        for sort_item in order_by:
            kind, value = _sort_item_target(sort_item.expr, items, aliases)
            if kind == "position":
                indices.append(value - 1)
            else:
                assert kind == "alias"
                indices.append(value)
        return indices

    def _compile_order_keys(self, order_by, items, project_exprs,
                            compiler: ExprCompiler, distinct: bool):
        """Compile ORDER BY keys; return hidden key closures (may be [])."""
        if not order_by:
            return []
        aliases = [(_derive_name(i) or "").lower() for i in items]
        all_positional = True
        for sort_item in order_by:
            kind, value = _sort_item_target(sort_item.expr, items, aliases)
            if kind == "position":
                if not 1 <= value <= len(items):
                    raise PlanError(f"ORDER BY position {value} is out of range")
            elif kind == "expr":
                all_positional = False
        if all_positional:
            return []
        if distinct:
            raise PlanError("for SELECT DISTINCT, ORDER BY expressions must "
                            "appear in the select list")
        hidden = []
        for sort_item in order_by:
            kind, value = _sort_item_target(sort_item.expr, items, aliases)
            if kind == "position":
                hidden.append(project_exprs[value - 1])
            elif kind == "alias":
                hidden.append(project_exprs[value])
            else:
                hidden.append(compiler.compile(value))
        return hidden

    # ------------------------------------------------------------------
    # FROM planning
    # ------------------------------------------------------------------

    def _plan_from(self, ref: A.TableRef, relations: list[Relation],
                   outer_scope: Optional[Scope]) -> FromNodePlan:
        if isinstance(ref, A.TableName):
            return self._plan_from_table(ref, relations)
        if isinstance(ref, A.SubqueryRef):
            return self._plan_from_subquery(ref, relations, outer_scope)
        if isinstance(ref, A.Join):
            left = self._plan_from(ref.left, relations, outer_scope)
            right = self._plan_from(ref.right, relations, outer_scope)
            condition: Optional[A.Expr] = None
            if ref.condition is not None:
                if ref.kind == "cross":
                    raise PlanError("CROSS JOIN cannot have an ON condition")
                if not (isinstance(ref.condition, A.Literal)
                        and ref.condition.value is True):
                    condition = ref.condition
            elif ref.kind in ("inner", "left"):
                raise PlanError(f"{ref.kind.upper()} JOIN requires ON")
            # Strategy (hash vs nested loop) and condition compilation are
            # deferred to _finalize_from, once the full scope is known.
            return _JoinDraft(ref.kind, left, right, condition,
                              prefix_len=len(relations))
        raise PlanError(f"unsupported FROM item {type(ref).__name__}")

    def _plan_from_table(self, ref: A.TableName,
                         relations: list[Relation]) -> FromLeafPlan:
        name = ref.name.lower()
        alias = (ref.alias or ref.name).lower()
        self._check_duplicate_alias(alias, relations)
        cte_def = self._cte_env.lookup(name) if self._cte_env else None
        if cte_def is not None:
            columns = list(cte_def.columns)
            source: Plan = CTEScanPlan(cte_def, columns)
        else:
            table = self.catalog.tables.get(name)
            if table is None:
                raise NameResolutionError(f"unknown table {ref.name!r}")
            columns = list(table.column_names)
            source = SeqScanPlan(name, columns)
        if ref.column_aliases:
            if len(ref.column_aliases) != len(columns):
                raise PlanError(
                    f"alias list for {alias!r} has {len(ref.column_aliases)} "
                    f"columns, relation has {len(columns)}")
            columns = [c.lower() for c in ref.column_aliases]
            source.output_columns = columns
        rel_index = len(relations)
        relations.append(Relation(alias, columns))
        return FromLeafPlan(rel_index, len(columns), source, lateral=False)

    def _plan_from_subquery(self, ref: A.SubqueryRef, relations: list[Relation],
                            outer_scope: Optional[Scope]) -> FromLeafPlan:
        alias = ref.alias.lower()
        self._check_duplicate_alias(alias, relations)
        if ref.lateral:
            # Lateral sees the FROM items planned so far as its outer scope.
            sub_outer: Optional[Scope] = Scope(list(relations),
                                               parent=outer_scope)
        else:
            sub_outer = outer_scope
        subplan = self.plan_select(ref.query, outer_scope=sub_outer)
        columns = list(subplan.output_columns)
        if ref.column_aliases:
            aliases = [c.lower() for c in ref.column_aliases]
            if len(aliases) == len(columns):
                columns = aliases
            elif len(columns) == 1 and len(aliases) > 1:
                # Engine extension: expand single ROW-valued column (the CTE
                # template's LATERAL (body) AS iter("call?", args, result)).
                subplan = RowExpandPlan(subplan, aliases)
                columns = aliases
            else:
                raise PlanError(
                    f"alias list for {alias!r} has {len(aliases)} columns, "
                    f"subquery produces {len(columns)}")
        rel_index = len(relations)
        relations.append(Relation(alias, columns))
        return FromLeafPlan(rel_index, len(columns), subplan, ref.lateral)

    # ------------------------------------------------------------------
    # Join strategy selection + predicate pushdown
    # ------------------------------------------------------------------

    def _finalize_from(self, node, where: Optional[A.Expr], scope: Scope):
        """Turn the FROM draft tree into executable plan nodes.

        Distributes WHERE conjuncts: single-relation conjuncts become leaf
        filters, equality conjuncts straddling an inner/cross join become
        hash-join keys, and whatever cannot move safely (conjuncts touching
        the nullable side of a LEFT JOIN, subqueries, outer-only or
        constant predicates) stays in the residual WHERE.  Returns
        ``(from_plan, residual_where)``.
        """
        if isinstance(node, FromLeafPlan):
            # Single relation: WHERE already runs right above the scan.
            return node, where
        conjuncts = split_conjuncts(where) if where is not None else []
        protected: set[int] = set()
        _collect_nullable_rels(node, protected)
        pushable: list[tuple[A.Expr, frozenset]] = []
        residual: list[A.Expr] = []
        for conjunct in conjuncts:
            info = column_bindings(conjunct, scope, self.catalog)
            if (self.enable_pushdown and not info.unknown and info.rels
                    and not (info.rels & protected)):
                pushable.append((conjunct, info.rels))
            else:
                residual.append(conjunct)
        plan, leftover, _stable = self._finalize_node(node, pushable, scope)
        residual.extend(conjunct for conjunct, _ in leftover)
        return plan, conjoin(residual)

    def _finalize_node(self, node, conjs: list, scope: Scope):
        """Recursively finalize *node*, consuming WHERE conjuncts from
        *conjs* where they can sink; returns ``(plan, unconsumed, stable)``.

        ``stable`` means: for a fixed database state, the subtree produces
        the same rows on every rescan regardless of outer context — only
        plain base-table scans with uncorrelated predicates qualify.  Hash
        joins use it to keep their build table across rescans.
        """
        if isinstance(node, FromLeafPlan):
            mine = [c for c, rels in conjs if rels == {node.rel_index}]
            rest = [(c, rels) for c, rels in conjs
                    if rels != {node.rel_index}]
            stable = not node.lateral and isinstance(node.source, SeqScanPlan)
            if mine:
                stable = stable and not any(
                    column_bindings(c, scope, self.catalog).outer
                    for c in mine)
                compiler = ExprCompiler(scope, self)
                node.filter = compiler.compile(conjoin(mine))
                node.filter_subplans = compiler.subplans
            return node, rest, stable

        left_slots = frozenset(i for i, _ in node.left.rel_slots)
        right_slots = frozenset(i for i, _ in node.right.rel_slots)
        to_left, to_right, spanning = [], [], []
        for conjunct, rels in conjs:
            if rels <= left_slots:
                to_left.append((conjunct, rels))
            elif rels <= right_slots:
                to_right.append((conjunct, rels))
            else:
                spanning.append((conjunct, rels))
        left_plan, leftover_left, left_stable = self._finalize_node(
            node.left, to_left, scope)
        right_plan, leftover_right, right_stable = self._finalize_node(
            node.right, to_right, scope)
        leftover = leftover_left + leftover_right

        # ON conditions must not see FROM items planned after the join —
        # the seed compiled them against the scope prefix of their planning
        # moment, and runtime only guarantees those vector slots are filled.
        on_scope = _prefix_scope(scope, node.prefix_len)

        # Equi-key extraction: from the ON condition, and — for inner and
        # cross joins, where WHERE and ON are interchangeable — from WHERE
        # conjuncts spanning the two sides.
        on_conjuncts = (split_conjuncts(node.condition)
                        if node.condition is not None else [])
        key_pairs: list[tuple[A.Expr, A.Expr]] = []
        residual_on: list[A.Expr] = []
        for conjunct in on_conjuncts:
            pair = self._equi_key(conjunct, left_slots, right_slots, on_scope)
            (key_pairs.append(pair) if pair is not None
             else residual_on.append(conjunct))
        where_keys: list[tuple[A.Expr, frozenset, tuple]] = []
        if node.kind in ("inner", "cross") and self.enable_pushdown:
            for conjunct, rels in spanning:
                pair = self._equi_key(conjunct, left_slots, right_slots, scope)
                if pair is not None:
                    where_keys.append((conjunct, rels, pair))
                else:
                    leftover.append((conjunct, rels))
        else:
            leftover.extend(spanning)

        # Merge join: preferred when both inputs are base-table leaves with
        # an existing sorted index on their (single) join key — the ordered
        # scans make the join one synchronized pass and rescans free.
        if (self.enable_mergejoin and node.kind in ("inner", "cross")
                and len(key_pairs) + len(where_keys) == 1):
            pair = key_pairs[0] if key_pairs else where_keys[0][2]
            merge = self._try_merge_join(left_plan, right_plan, pair,
                                         residual_on, on_scope)
            if merge is not None:
                residual_ast = conjoin(residual_on)
                residual_info = (column_bindings(residual_ast, on_scope,
                                                 self.catalog)
                                 if residual_ast is not None else None)
                stable = (left_stable and right_stable
                          and (residual_info is None
                               or not (residual_info.outer
                                       or residual_info.unknown)))
                return merge, leftover, stable

        can_hash = (self.enable_hashjoin
                    and node.kind in ("inner", "left", "cross")
                    and bool(key_pairs or where_keys)
                    and not _contains_lateral(left_plan)
                    and not _contains_lateral(right_plan))
        condition_info = (column_bindings(node.condition, on_scope,
                                          self.catalog)
                          if node.condition is not None else None)
        if not can_hash:
            # Nested-loop fallback: WHERE key candidates go back to WHERE,
            # the ON condition is compiled whole, exactly like the seed.
            leftover.extend((conjunct, rels)
                            for conjunct, rels, _ in where_keys)
            compiler = ExprCompiler(on_scope, self)
            condition = (compiler.compile(node.condition)
                         if node.condition is not None else None)
            stable = (left_stable and right_stable
                      and (condition_info is None
                           or not (condition_info.outer
                                   or condition_info.unknown)))
            return FromJoinPlan(node.kind, left_plan, right_plan, condition,
                                compiler.subplans), leftover, stable

        left_key_asts = [pair[0] for pair in key_pairs]
        right_key_asts = [pair[1] for pair in key_pairs]
        for _conjunct, _rels, (left_ast, right_ast) in where_keys:
            left_key_asts.append(left_ast)
            right_key_asts.append(right_ast)
        # WHERE-derived keys reference only this join's subtree (enforced
        # above), so the prefix scope is valid for every expression here.
        compiler = ExprCompiler(on_scope, self)
        left_keys = [compiler.compile(e) for e in left_key_asts]
        right_keys = [compiler.compile(e) for e in right_key_asts]
        residual_ast = conjoin(residual_on)
        residual = (compiler.compile(residual_ast)
                    if residual_ast is not None else None)
        kind = "inner" if node.kind == "cross" else node.kind
        if kind == "left":
            # The preserved side must stream so unmatched rows can be
            # NULL-filled: always build on the nullable right side.
            build_side = "right"
        else:
            build_side = ("left" if self._estimate_node(left_plan)
                          < self._estimate_node(right_plan) else "right")
        key_display = ", ".join(
            f"{_display_expr(l)} = {_display_expr(r)}"
            for l, r in zip(left_key_asts, right_key_asts))
        # Rebuild the hash table per rescan only when the build side (or
        # its keys) can observe the outer context.
        build_stable, build_key_asts = (
            (right_stable, right_key_asts) if build_side == "right"
            else (left_stable, left_key_asts))
        keys_correlated = any(column_bindings(ast, on_scope,
                                              self.catalog).outer
                              for ast in build_key_asts)
        rebuild = not build_stable or keys_correlated
        plan = HashJoinPlan(kind, left_plan, right_plan, left_keys,
                            right_keys, residual, compiler.subplans,
                            build_side, key_display,
                            rebuild_on_rescan=rebuild)
        residual_info = (column_bindings(residual_ast, on_scope,
                                         self.catalog)
                         if residual_ast is not None else None)
        all_keys_local = not keys_correlated and not any(
            column_bindings(ast, on_scope, self.catalog).outer
            for ast in (left_key_asts if build_side == "right"
                        else right_key_asts))
        stable = (left_stable and right_stable and all_keys_local
                  and (residual_info is None
                       or not (residual_info.outer or residual_info.unknown)))
        return plan, leftover, stable

    def _try_merge_join(self, left_plan, right_plan,
                        pair: tuple[A.Expr, A.Expr], residual_on: list,
                        on_scope: Scope) -> Optional[MergeJoinPlan]:
        """A MergeJoinPlan when both join inputs are non-lateral base-table
        leaves whose single-column join keys have an *existing* ascending
        sorted index (declared via CREATE INDEX or left behind by an
        earlier ordered scan) — else None.  The leaves' scans are swapped
        for ordered index scans; pushed-down leaf filters survive (a
        filtered subsequence of an ordered stream stays ordered)."""
        left_ast, right_ast = pair
        sides = []
        for leaf, ast in ((left_plan, left_ast), (right_plan, right_ast)):
            if not isinstance(leaf, FromLeafPlan) or leaf.lateral:
                return None
            source = leaf.source
            if not isinstance(source, SeqScanPlan):
                return None
            if not isinstance(ast, A.ColumnRef):
                return None
            try:
                level, rel_index, col_index, fields = \
                    on_scope.resolve(ast.parts)
            except NameResolutionError:
                return None
            if level != 0 or rel_index != leaf.rel_index or fields:
                return None
            table = self.catalog.tables.get(source.table_name)
            if table is None or table.sorted_index_if_exists(
                    (col_index,), (False,)) is None:
                return None
            sides.append((leaf, source, col_index))
        for leaf, source, col_index in sides:
            leaf.source = IndexRangeScanPlan(
                source.table_name, source.output_columns,
                (col_index,), (False,), None, None)
        compiler = ExprCompiler(on_scope, self)
        left_key = compiler.compile(left_ast)
        right_key = compiler.compile(right_ast)
        residual_ast = conjoin(residual_on)
        residual = (compiler.compile(residual_ast)
                    if residual_ast is not None else None)
        key_display = f"{_display_expr(left_ast)} = {_display_expr(right_ast)}"
        return MergeJoinPlan(left_plan, right_plan, left_key, right_key,
                             residual, compiler.subplans, key_display)

    def _equi_key(self, conjunct: A.Expr, left_slots: frozenset,
                  right_slots: frozenset, scope: Scope):
        """``(left_expr, right_expr)`` when *conjunct* is an equality whose
        sides bind cleanly to opposite sides of the join, else None."""
        if not (isinstance(conjunct, A.BinaryOp) and conjunct.op == "="):
            return None
        lb = column_bindings(conjunct.left, scope, self.catalog)
        rb = column_bindings(conjunct.right, scope, self.catalog)
        if lb.unknown or rb.unknown:
            return None
        if lb.rels and lb.rels <= left_slots \
                and rb.rels and rb.rels <= right_slots:
            return conjunct.left, conjunct.right
        if lb.rels and lb.rels <= right_slots \
                and rb.rels and rb.rels <= left_slots:
            return conjunct.right, conjunct.left
        return None

    def _estimate_node(self, plan) -> int:
        """Cardinality estimate for a finalized FROM subtree (heuristic
        input to the hash-join build-side choice)."""
        if isinstance(plan, FromLeafPlan):
            source = plan.source
            if isinstance(source, SeqScanPlan):
                return self.catalog.estimate_rows(source.table_name,
                                                  _DEFAULT_CARDINALITY)
            return _DEFAULT_CARDINALITY
        # Equi-join output is roughly the larger input; good enough here.
        return max(self._estimate_node(plan.left),
                   self._estimate_node(plan.right))

    # ------------------------------------------------------------------
    # Index pushdown
    # ------------------------------------------------------------------

    def _try_index_pushdown(self, where: A.Expr, leaf: FromLeafPlan,
                            scope: Scope):
        """Access-path selection for a single base-table FROM.

        Equality conjuncts ``col = expr`` (where *expr* provably never
        references the scanned relation — correlated keys included) become
        a hash-index scan; failing that, range conjuncts
        ``col < / <= / > / >= expr`` and ``col BETWEEN lo AND hi`` become a
        bisect-backed :class:`~repro.sql.executor.scan.IndexRangeScanPlan`.
        Returns the (possibly new) leaf plan and the residual WHERE.
        """
        from .executor.scan import IndexScanPlan

        source = leaf.source
        assert isinstance(source, SeqScanPlan)
        conjuncts = split_conjuncts(where)
        key_columns: list[int] = []
        key_exprs = []
        residual: list[A.Expr] = []
        compiler = ExprCompiler(scope, self)

        def independent(value_side: A.Expr):
            """Compile *value_side* when it provably never reads the
            scanned relation; None otherwise."""
            hits: list = []
            scope.observer = lambda rel, col: hits.append((rel, col))
            try:
                compiled = compiler.compile(value_side)
            except NameResolutionError:
                return None
            finally:
                scope.observer = None
            return None if hits else compiled

        for conjunct in conjuncts:
            pushed = False
            if isinstance(conjunct, A.BinaryOp) and conjunct.op == "=":
                for column_side, value_side in ((conjunct.left, conjunct.right),
                                                (conjunct.right, conjunct.left)):
                    column = self._leaf_column(column_side, scope)
                    if column is None or column in key_columns:
                        continue
                    compiled = independent(value_side)
                    if compiled is None:
                        continue
                    key_columns.append(column)
                    key_exprs.append(compiled)
                    pushed = True
                    break
            if not pushed:
                residual.append(conjunct)
        if key_columns:
            index_plan = IndexScanPlan(source.table_name,
                                       source.output_columns,
                                       key_columns, key_exprs,
                                       compiler.subplans)
            new_leaf = FromLeafPlan(leaf.rel_index,
                                    len(source.output_columns),
                                    index_plan, lateral=False)
            return new_leaf, conjoin(residual)
        if self.enable_rangescan:
            range_leaf, residual = self._try_range_pushdown(
                residual, leaf, source, scope, compiler, independent)
            if range_leaf is not None:
                return range_leaf, conjoin(residual)
        return leaf, where

    _RANGE_OPS = {"<": ("upper", False), "<=": ("upper", True),
                  ">": ("lower", False), ">=": ("lower", True)}
    _FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

    def _try_range_pushdown(self, conjuncts: list, leaf: FromLeafPlan,
                            source: SeqScanPlan, scope: Scope,
                            compiler: ExprCompiler, independent):
        """Accumulate per-column lower/upper bounds from range conjuncts
        and emit an IndexRangeScan for the best-bounded column.  A bound
        expression must not read the scanned relation and must keep its
        evaluation count when hoisted from per-row WHERE to per-open probe
        (``column_bindings``'s ``unknown`` oracle rejects volatile and
        user-defined calls and subqueries).  Returns
        ``(new leaf | None, residual conjuncts)``."""
        bounds: dict[int, dict] = {}      # column -> side -> (expr, incl, disp)
        consumed: dict[int, list] = {}    # column -> conjuncts it absorbed
        order: list[int] = []
        residual: list[A.Expr] = []

        def bindable(value_side: A.Expr):
            if column_bindings(value_side, scope, self.catalog).unknown:
                return None  # volatile / user call / subquery: stays put
            return independent(value_side)

        for conjunct in conjuncts:
            placed = False
            if isinstance(conjunct, A.BinaryOp) \
                    and conjunct.op in self._RANGE_OPS:
                attempts = ((conjunct.left, conjunct.right, conjunct.op),
                            (conjunct.right, conjunct.left,
                             self._FLIPPED_OPS[conjunct.op]))
                for column_side, value_side, op in attempts:
                    column = self._leaf_column(column_side, scope)
                    if column is None:
                        continue
                    side, inclusive = self._RANGE_OPS[op]
                    if side in bounds.get(column, {}):
                        continue  # first bound wins; extras stay in WHERE
                    compiled = bindable(value_side)
                    if compiled is None:
                        continue
                    entry = bounds.setdefault(column, {})
                    if not entry:
                        order.append(column)
                    entry[side] = (compiled, inclusive,
                                   _display_expr(value_side))
                    consumed.setdefault(column, []).append(conjunct)
                    placed = True
                    break
            elif isinstance(conjunct, A.Between) and not conjunct.negated:
                column = self._leaf_column(conjunct.operand, scope)
                if column is not None and not bounds.get(column):
                    low = bindable(conjunct.low)
                    high = bindable(conjunct.high)
                    if low is not None and high is not None:
                        order.append(column)
                        bounds[column] = {
                            "lower": (low, True, _display_expr(conjunct.low)),
                            "upper": (high, True,
                                      _display_expr(conjunct.high)),
                        }
                        consumed.setdefault(column, []).append(conjunct)
                        placed = True
            if not placed:
                residual.append(conjunct)
        if not order:
            return None, conjuncts
        # Prefer a column bounded on both sides (tightest bisect window).
        chosen = next((c for c in order if len(bounds[c]) == 2), order[0])
        for column in order:
            if column != chosen:
                residual.extend(consumed[column])
        entry = bounds[chosen]
        range_plan = IndexRangeScanPlan(
            source.table_name, source.output_columns, (chosen,), (False,),
            entry.get("lower"), entry.get("upper"), False, compiler.subplans)
        new_leaf = FromLeafPlan(leaf.rel_index, len(source.output_columns),
                                range_plan, lateral=False)
        return new_leaf, residual

    def _eliminate_sort(self, order_by: list, items: list,
                        leaf: FromLeafPlan, scope: Scope) -> bool:
        """Swap the leaf's scan for an ordered index scan when an existing
        sorted index already delivers the requested ORDER BY (tracking
        ASC/DESC per key, default NULLS placement only), so the planner
        can drop the Sort node.  True on success."""
        aliases = [(_derive_name(i) or "").lower() for i in items]
        wanted: list[tuple[int, bool]] = []
        for sort_item in order_by:
            kind, value = _sort_item_target(sort_item.expr, items, aliases)
            if kind == "position":
                if not 1 <= value <= len(items):
                    return False  # keep the sort path's range error
                expr = items[value - 1].expr
            elif kind == "alias":
                expr = items[value].expr
            else:
                expr = value
            if not isinstance(expr, A.ColumnRef):
                return False
            try:
                level, rel_index, col_index, fields = scope.resolve(expr.parts)
            except NameResolutionError:
                return False
            if level != 0 or rel_index != leaf.rel_index or fields:
                return False
            descending = sort_item.descending
            if sort_item.nulls_first is not None \
                    and sort_item.nulls_first != descending:
                return False  # non-default NULLS placement: keep the sort
            wanted.append((col_index, descending))
        source = leaf.source
        if isinstance(source, IndexRangeScanPlan):
            # A range scan already delivers its key column in order; a DESC
            # request just flips the iteration direction.
            if len(source.key_columns) == 1 and len(wanted) == 1 \
                    and wanted[0][0] == source.key_columns[0] \
                    and not source.key_desc[0]:
                source.reverse = wanted[0][1]
                return True
            return False
        if not isinstance(source, SeqScanPlan):
            return False
        table = self.catalog.tables.get(source.table_name)
        if table is None:
            return False
        found = table.find_ordered_index(wanted)
        if found is None:
            return False
        index, reverse = found
        leaf.source = IndexRangeScanPlan(
            source.table_name, source.output_columns,
            index.columns, index.descending, None, None, reverse)
        return True

    @staticmethod
    def _leaf_column(expr: A.Expr, scope: Scope) -> Optional[int]:
        """Column index when *expr* is a direct reference to relation 0 of
        *scope* (no composite field tail), else None."""
        if not isinstance(expr, A.ColumnRef):
            return None
        try:
            level, rel_index, col_index, fields = scope.resolve(expr.parts)
        except NameResolutionError:
            return None
        if level == 0 and rel_index == 0 and not fields:
            return col_index
        return None

    @staticmethod
    def _check_duplicate_alias(alias: str, relations: list[Relation]) -> None:
        if any(rel.alias == alias for rel in relations):
            raise PlanError(f"table alias {alias!r} used more than once")

    def _expand_star(self, star: A.Star,
                     relations: list[Relation]) -> list[A.SelectItem]:
        out: list[A.SelectItem] = []
        wanted = star.table.lower() if star.table else None
        matched = False
        for rel in relations:
            if wanted is not None and rel.alias != wanted:
                continue
            matched = True
            for column in rel.columns:
                out.append(A.SelectItem(A.ColumnRef((rel.alias, column)),
                                        alias=column))
        if wanted is not None and not matched:
            raise NameResolutionError(f"unknown relation {star.table!r} in "
                                      f"{star.table}.*")
        if wanted is None and not relations:
            raise PlanError("SELECT * requires a FROM clause")
        return out

    # ------------------------------------------------------------------
    # Aggregation planning
    # ------------------------------------------------------------------

    def _plan_aggregation(self, core: A.SelectCore, scope: Scope,
                          outer_scope: Optional[Scope],
                          item_exprs: list[A.Expr], having: Optional[A.Expr]):
        pre_compiler = ExprCompiler(scope, self)
        group_keys = [pre_compiler.compile(e) for e in core.group_by]
        agg_calls: list[AggCallPlan] = []

        key_names = [f"__key{i}" for i in range(len(core.group_by))]
        agg_rel_columns = list(key_names)

        def rewrite(expr: A.Expr) -> A.Expr:
            for key_index, key_expr in enumerate(core.group_by):
                if expr_equal(expr, key_expr):
                    return A.ColumnRef(("__agg", key_names[key_index]))
            if isinstance(expr, A.FuncCall) and expr.window is None \
                    and is_aggregate_name(expr.name):
                agg_index = len(agg_calls)
                agg_calls.append(self._make_agg_call(expr, pre_compiler))
                column = f"__agg{agg_index}"
                agg_rel_columns.append(column)
                return A.ColumnRef(("__agg", column))
            return _rewrite_children(expr, rewrite)

        rewritten_items = [rewrite(e) for e in item_exprs]
        rewritten_having = rewrite(having) if having is not None else None

        post_scope = Scope([Relation("__agg", agg_rel_columns)],
                           parent=outer_scope)
        having_compiler = ExprCompiler(post_scope, self)
        having_fn = (having_compiler.compile(rewritten_having)
                     if rewritten_having is not None else None)
        stage = AggStagePlan(group_keys, agg_calls, having_fn,
                             pre_compiler.subplans, having_compiler.subplans)
        return stage, rewritten_items, None, post_scope, rewrite

    def _make_agg_call(self, call: A.FuncCall,
                       compiler: ExprCompiler) -> AggCallPlan:
        name = call.name.lower()
        separator = ""
        args = list(call.args)
        if name == "string_agg":
            if len(args) != 2 or not isinstance(args[1], A.Literal):
                raise PlanError("string_agg requires (value, constant separator)")
            separator = str(args[1].value)
            args = args[:1]
        if call.star:
            return AggCallPlan(name, True, None, call.distinct, separator)
        if len(args) != 1:
            raise PlanError(f"aggregate {name}() takes exactly one argument")
        if contains_aggregate(args[0]):
            raise PlanError("aggregate calls cannot be nested")
        return AggCallPlan(name, False, compiler.compile(args[0]),
                           call.distinct, separator, arg_ast=args[0])

    # ------------------------------------------------------------------
    # Window planning
    # ------------------------------------------------------------------

    def _plan_windows(self, core: A.SelectCore, scope: Scope,
                      outer_scope: Optional[Scope], item_exprs: list[A.Expr],
                      agg_rewrite=None):
        compiler = ExprCompiler(scope, self)
        calls: list[WindowCallPlan] = []
        columns: list[str] = []

        def rewrite(expr: A.Expr) -> A.Expr:
            if isinstance(expr, A.FuncCall) and expr.window is not None:
                index = len(calls)
                calls.append(self._make_window_call(expr, core, compiler,
                                                    agg_rewrite))
                column = f"__w{index}"
                columns.append(column)
                return A.ColumnRef(("__win", column))
            return _rewrite_children(expr, rewrite)

        rewritten = [rewrite(e) for e in item_exprs]
        post_scope = Scope(scope.relations + [Relation("__win", columns)],
                           parent=outer_scope)
        return WindowStagePlan(calls, compiler.subplans), rewritten, post_scope

    def _make_window_call(self, call: A.FuncCall, core: A.SelectCore,
                          compiler: ExprCompiler,
                          agg_rewrite=None) -> WindowCallPlan:
        name = call.name.lower()
        if not (is_aggregate_name(name) or is_window_function_name(name)):
            raise PlanError(f"{name}() is not a window function or aggregate")
        spec = self._resolve_window_spec(call.window, core)
        if agg_rewrite is not None:
            # Grouped query: the spec's PARTITION BY / ORDER BY expressions
            # reference pre-aggregation columns; map them to the __agg
            # relation exactly like the select list was mapped.
            spec = A.WindowSpec(
                ref_name=None,
                partition_by=[agg_rewrite(e) for e in spec.partition_by],
                order_by=[A.SortItem(agg_rewrite(s.expr), s.descending,
                                     s.nulls_first) for s in spec.order_by],
                frame=spec.frame)
        separator = ""
        args = list(call.args)
        if name == "string_agg":
            if len(args) != 2 or not isinstance(args[1], A.Literal):
                raise PlanError("string_agg requires (value, constant separator)")
            separator = str(args[1].value)
            args = args[:1]
        frame = spec.frame
        frame_compiled = None
        if frame is not None:
            start = A.FrameBound(frame.start.kind,
                                 compiler.compile(frame.start.offset)
                                 if frame.start.offset is not None else None)
            end = A.FrameBound(frame.end.kind,
                               compiler.compile(frame.end.offset)
                               if frame.end.offset is not None else None)
            frame_compiled = A.FrameSpec(frame.mode, start, end, frame.exclusion)
        return WindowCallPlan(
            func_name=name,
            args=[compiler.compile(a) for a in args],
            star=call.star,
            partition_by=[compiler.compile(e) for e in spec.partition_by],
            order_by=[compiler.compile(s.expr) for s in spec.order_by],
            order_desc=[s.descending for s in spec.order_by],
            frame=frame_compiled,
            separator=separator,
        )

    # ------------------------------------------------------------------
    # Set-oriented compiled-UDF calls (the BatchedUdf operator)
    # ------------------------------------------------------------------

    def _plan_batched_udfs(self, item_exprs: list[A.Expr], scope: Scope,
                           outer_scope: Optional[Scope]):
        """Rewrite eligible compiled-function calls in the select list to
        read from the ``__batch`` relation computed by one set-oriented
        trampoline run per call site (executor/batched_udf.py).

        Returns ``(stage, item_exprs, scope)``; stage is None (and the
        inputs pass through untouched) when nothing batches.  Identical
        call sites share one batch column, so ``SELECT f(x), f(x)`` runs a
        single trampoline.
        """
        calls: list = []
        originals: list[A.FuncCall] = []
        columns: list[str] = []
        compiler = ExprCompiler(scope, self)

        def rewrite(expr: A.Expr) -> A.Expr:
            if isinstance(expr, A.FuncCall) and self._batchable(expr, scope):
                for index, seen in enumerate(originals):
                    if expr_equal(expr, seen):
                        return A.ColumnRef(("__batch", columns[index]))
                fdef = self.catalog.get_function(expr.name)
                assert fdef is not None
                column = f"__b{len(calls)}"
                site = self._batched_qf_plan(fdef).at_call_site(
                    fdef.name,
                    ", ".join(_display_expr(a) for a in expr.args),
                    [compiler.compile(a) for a in expr.args])
                from ..analysis.volatility import effective_volatility
                site.volatility = effective_volatility(fdef, self.catalog)
                calls.append(site)
                originals.append(expr)
                columns.append(column)
                return A.ColumnRef(("__batch", column))
            return _rewrite_children(expr, rewrite)

        rewritten = [rewrite(e) for e in item_exprs]
        if not calls:
            return None, item_exprs, scope
        post_scope = Scope(scope.relations + [Relation("__batch", columns)],
                           parent=outer_scope)
        return (BatchedUdfStagePlan(calls, compiler.subplans,
                                    dedup=self.batch_dedup),
                rewritten, post_scope)

    def _batchable(self, call: A.FuncCall, scope: Scope) -> bool:
        """May *call* run through the batched trampoline?  Requires a
        compiled function carrying a batched Qf (loop-free and volatile
        bodies never get one) and argument expressions whose evaluation can
        safely move into the batch stage — no subqueries, no volatile
        calls (``column_bindings``'s ``unknown`` oracle).  User-defined
        calls in argument position pass when the static analyzer proves
        them pure (repro.analysis.volatility); before that inference the
        planner pessimistically dropped such sites to the per-row scalar
        path."""
        if call.window is not None or call.star or call.distinct:
            return False
        fdef = self.catalog.get_function(call.name)
        if fdef is None or fdef.kind != "compiled" \
                or fdef.batched_query is None:
            return False
        if len(call.args) != fdef.arity:
            return False  # the scalar path raises the arity error
        return all(not column_bindings(arg, scope, self.catalog).unknown
                   for arg in call.args)

    def _batched_qf_plan(self, fdef):
        """The batched trampoline for *fdef*, per the current strategy.

        Cached on the FunctionDef: the batched query takes its arguments
        from the batch-input relation rather than spliced-in expressions,
        so one compiled trampoline serves every call site
        (Database.clear_plan_cache resets it)."""
        strategy = self.batch_strategy
        cached = fdef.batched_plan
        if cached is not None and cached[0] == strategy:
            return cached[1]
        if strategy == "machine":
            template = compile_machine(fdef.batch_machine, self)
        elif strategy == "sql":
            batch_def = CteDef("__batch_input",
                               [c.lower() for c in fdef.batch_columns])
            env = CteEnv()
            env.defs[batch_def.name] = batch_def
            plan = self.plan_select(fdef.batched_query, outer_scope=None,
                                    cte_env=env)
            template = SqlCallPlan(plan, batch_def)
        else:
            raise PlanError(f"unknown batch_strategy {strategy!r}")
        fdef.batched_plan = (strategy, template)
        return template

    def _resolve_window_spec(self, window, core: A.SelectCore) -> A.WindowSpec:
        if isinstance(window, str):
            spec = core.windows.get(window.lower())
            if spec is None:
                raise PlanError(f"unknown window {window!r}")
            return self._resolve_window_spec(spec, core)
        assert isinstance(window, A.WindowSpec)
        if window.ref_name is None:
            return window
        base = core.windows.get(window.ref_name.lower())
        if base is None:
            raise PlanError(f"unknown window {window.ref_name!r}")
        base = self._resolve_window_spec(base, core)
        if window.partition_by:
            raise PlanError("cannot override PARTITION BY of a named window")
        if window.order_by and base.order_by:
            raise PlanError("cannot override ORDER BY of a named window")
        return A.WindowSpec(
            ref_name=None,
            partition_by=base.partition_by,
            order_by=window.order_by or base.order_by,
            frame=window.frame if window.frame is not None else base.frame,
        )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _sort_item_target(expr: A.Expr, items: list, aliases: list):
    """Classify an ORDER BY expression against the select list — the one
    resolution rule shared by hidden-key compilation, positional sorting
    and sort elimination, which must agree or an eliminated sort could
    order by a different column than the Sort it replaces.

    Returns ``("position", ordinal)`` for a 1-based integer literal,
    ``("alias", item index)`` for a bare name matching a select alias,
    else ``("expr", expr)``.
    """
    if isinstance(expr, A.Literal) and isinstance(expr.value, int) \
            and not isinstance(expr.value, bool):
        return "position", expr.value
    if isinstance(expr, A.ColumnRef) and len(expr.parts) == 1 \
            and expr.parts[0].lower() in aliases:
        return "alias", aliases.index(expr.parts[0].lower())
    return "expr", expr


def _constant_topn_count(stmt: A.SelectStmt) -> Optional[int]:
    """``limit + offset`` when both are non-negative integer literals
    (LIMIT required), else None — only constants let the planner bound the
    Top-N heap without changing when the bound expressions run."""
    limit = stmt.limit
    if not (isinstance(limit, A.Literal) and type(limit.value) is int
            and limit.value >= 0):
        return None
    offset = stmt.offset
    if offset is None:
        return limit.value
    if not (isinstance(offset, A.Literal) and type(offset.value) is int
            and offset.value >= 0):
        return None
    return limit.value + offset.value


def _flatten_union(body, op: str, cte_name: str) -> list:
    """Flatten a chain of set operations of one kind into its terms."""
    if isinstance(body, A.SetOp):
        if body.op != op:
            raise PlanError(
                f"recursive CTE {cte_name!r} mixes UNION and UNION ALL")
        return (_flatten_union(body.left, op, cte_name)
                + _flatten_union(body.right, op, cte_name))
    return [body]


def _prefix_scope(scope: Scope, prefix_len: int) -> Scope:
    """A scope exposing only the first *prefix_len* relations of *scope*.

    Later relations are replaced by unresolvable placeholders so their
    vector indices stay aligned; references to them fail name resolution at
    plan time (like PostgreSQL's "cannot be referenced from this part of
    the query") instead of reading unfilled slots at run time.
    """
    if prefix_len >= len(scope.relations):
        return scope
    masked = list(scope.relations[:prefix_len])
    masked += [Relation("\x00masked", [])
               for _ in range(len(scope.relations) - prefix_len)]
    return Scope(masked, parent=scope.parent)


def _collect_nullable_rels(node, out: set) -> None:
    """Relation indices under the nullable (right) side of any LEFT JOIN in
    the draft tree — WHERE conjuncts touching these must not be pushed
    below the null-filling join."""
    if isinstance(node, _JoinDraft):
        if node.kind == "left":
            out.update(index for index, _ in node.right.rel_slots)
        _collect_nullable_rels(node.left, out)
        _collect_nullable_rels(node.right, out)


def _contains_lateral(plan) -> bool:
    """Does this finalized FROM subtree contain a LATERAL leaf?  Those must
    be re-evaluated per outer tick, so hash joins never cover them."""
    if isinstance(plan, FromLeafPlan):
        return plan.lateral
    return _contains_lateral(plan.left) or _contains_lateral(plan.right)


def _display_expr(expr: A.Expr) -> str:
    """Terse rendering of a join-key expression for EXPLAIN output."""
    if isinstance(expr, A.ColumnRef):
        return ".".join(expr.parts)
    if isinstance(expr, A.Literal):
        return repr(expr.value)
    return "<expr>"


def _apply_column_aliases(cte_name: str, derived: list[str],
                          aliases: Optional[list[str]]) -> list[str]:
    if aliases is None:
        return list(derived)
    if len(aliases) != len(derived):
        raise PlanError(
            f"CTE {cte_name!r} declares {len(aliases)} columns but its query "
            f"produces {len(derived)}")
    return [a.lower() for a in aliases]


def _derive_name(item: A.SelectItem) -> str:
    if item.alias:
        return item.alias.lower()
    expr = item.expr
    if isinstance(expr, A.ColumnRef):
        return expr.parts[-1].lower()
    if isinstance(expr, A.FuncCall):
        return expr.name.lower()
    if isinstance(expr, A.Cast):
        inner = _derive_name(A.SelectItem(expr.operand))
        return inner if inner != "?column?" else expr.type_name.lower()
    if isinstance(expr, A.FieldAccess):
        return expr.fieldname.lower()
    if isinstance(expr, A.CaseExpr):
        return "case"
    return "?column?"


def _rewrite_children(expr: A.Expr, fn) -> A.Expr:
    """Shallow rebuild applying *fn* to each direct child expression."""
    import dataclasses

    changes = {}
    for fld in dataclasses.fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, fld.name)
        if isinstance(value, A.Expr):
            new = fn(value)
            if new is not value:
                changes[fld.name] = new
        elif isinstance(value, list) and value:
            new_list = []
            dirty = False
            for element in value:
                if isinstance(element, A.Expr):
                    new_element = fn(element)
                elif isinstance(element, tuple) and any(
                        isinstance(p, A.Expr) for p in element):
                    new_element = tuple(fn(p) if isinstance(p, A.Expr) else p
                                        for p in element)
                else:
                    new_element = element
                dirty = dirty or new_element is not element
                new_list.append(new_element)
            if dirty:
                changes[fld.name] = new_list
    if not changes:
        return expr
    return dataclasses.replace(expr, **changes)  # type: ignore[type-var]


def _references_table(stmt: A.SelectStmt, name: str) -> bool:
    """Does *stmt* (recursively) scan a table/CTE called *name*?"""
    found = False

    def visit_body(body) -> None:
        nonlocal found
        if found:
            return
        if isinstance(body, A.SetOp):
            visit_body(body.left)
            visit_body(body.right)
            return
        if isinstance(body, A.ValuesClause):
            return
        visit_table(body.from_clause)
        for item in body.items:
            if isinstance(item, A.SelectItem):
                visit_expr(item.expr)
        if body.where is not None:
            visit_expr(body.where)

    def visit_table(ref) -> None:
        nonlocal found
        if ref is None or found:
            return
        if isinstance(ref, A.TableName):
            if ref.name.lower() == name:
                found = True
        elif isinstance(ref, A.SubqueryRef):
            visit_stmt(ref.query)
        elif isinstance(ref, A.Join):
            visit_table(ref.left)
            visit_table(ref.right)

    def visit_expr(expr: A.Expr) -> None:
        nonlocal found
        if found:
            return
        from .astutil import walk_expr
        for node in walk_expr(expr):
            if isinstance(node, (A.ScalarSubquery, A.Exists)):
                visit_stmt(node.query if isinstance(node, A.ScalarSubquery)
                           else node.subquery)
            elif isinstance(node, A.InSubquery):
                visit_stmt(node.subquery)

    def visit_stmt(stmt_: A.SelectStmt) -> None:
        if stmt_.with_clause is not None:
            for cte in stmt_.with_clause.ctes:
                if cte.name.lower() == name:
                    # Shadowed inside; still conservative: treat as reference.
                    pass
                visit_stmt(cte.query)
        visit_body(stmt_.body)

    visit_stmt(stmt)
    return found


def _body_references_table(body, name: str) -> bool:
    return _references_table(A.SelectStmt(None, body), name)
