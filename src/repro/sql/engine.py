"""The :class:`Database` facade: SQL entry point, plan cache, profiling.

Execution life cycle (mirroring PostgreSQL, which is what makes the paper's
cost accounting reproducible here):

1. **Parse** — text to AST (only on plan-cache miss),
2. **Plan** — AST to immutable plan tree (cached by SQL text),
3. **ExecutorStart** — instantiate the plan into per-execution state,
4. **ExecutorRun** — pull all tuples,
5. **ExecutorEnd** — tear the state down.

Every embedded-query evaluation performed by the PL/pgSQL interpreter runs
through this same path, so steps 3 and 5 recur per evaluation — that is the
``f→Qi`` overhead of Section 1.  A compiled function is inlined into its
calling query by the planner and thus passes through steps 1–3 exactly once.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from . import ast as A
from .catalog import Catalog, FunctionDef
from .errors import (CatalogError, ExecutionError, PlanError, PlsqlError,
                     SqlError, TypeError_)
from .expr import EvalContext, ExprCompiler, Relation, RuntimeContext, Scope
from .parser import parse_script, parse_statement
from .planner import Planner
from .profiler import (EXEC_END, EXEC_RUN, EXEC_START, PARSE, PLAN,
                       PLAN_CACHE_HIT, PLAN_CACHE_MISS, PLAN_INSTANTIATIONS,
                       SWITCH_Q_TO_F, Profiler)
from .storage import BufferManager
from .types import cast_value
from .values import Value


class Result:
    """A query result: column names plus a list of row tuples."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: list[str], rows: list[tuple]):
        self.columns = columns
        self.rows = rows

    def scalar(self) -> Value:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns")
        return self.rows[0][0]

    def first(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Result({self.columns}, {len(self.rows)} rows)"


class Database:
    """An in-memory relational database with PL/pgSQL support.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t(x int)")
    >>> _ = db.execute("INSERT INTO t VALUES (1), (2)")
    >>> db.execute("SELECT sum(x) FROM t").scalar()
    3
    """

    def __init__(self, seed: int = 0, profile: bool = True):
        import sys
        if sys.getrecursionlimit() < 20000:
            # Directly recursive SQL UDFs nest many Python frames per call;
            # let our own max_udf_depth guard fire before CPython's.
            sys.setrecursionlimit(20000)
        self.buffers = BufferManager()
        self.catalog = Catalog(self.buffers)
        self.rng = random.Random(seed)
        self.profiler = Profiler(enabled=profile)
        self.planner = Planner(self)
        self._plan_cache: dict[str, object] = {}
        self.max_recursion_iterations = 10_000_000
        #: Matches PostgreSQL's max_stack_depth behaviour: directly recursive
        #: SQL UDFs (the paper's intermediate UDF form) blow this quickly.
        self.max_udf_depth = 192
        self._udf_depth = 0
        #: Statement budget per PL/pgSQL activation: a loop that never exits
        #: (WHILE over a diverging Collatz sequence, say) raises
        #: ExecutionError instead of hanging the process.  Mirrors the
        #: max_udf_depth guard above; lower it for tests, raise it for
        #: genuinely long-running functions.
        self.max_interp_statements = 10_000_000
        self.plan_cache_enabled = True
        #: RAISE NOTICE/WARNING/INFO messages from PL/pgSQL execution.
        self.notices: list[str] = []
        #: When set to a dict, the PL/pgSQL interpreter accumulates per-
        #: statement phase timings into it (Figure 3's profile bars):
        #: label -> {phase -> seconds}.
        self.plsql_statement_profile: Optional[dict] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Value] = ()) -> Result:
        """Execute one SQL statement (text) and return its result."""
        if _looks_like_select(sql):
            plan = self._get_plan(sql)
            return self._run_plan(plan, params)
        with self.profiler.phase(PARSE):
            stmt = parse_statement(sql)
        return self.execute_ast(stmt, params)

    def execute_ast(self, stmt: A.Statement, params: Sequence[Value] = ()) -> Result:
        """Execute a pre-parsed statement AST."""
        if isinstance(stmt, A.SelectStmt):
            with self.profiler.phase(PLAN):
                plan = self.planner.plan_select(stmt)
            return self._run_plan(plan, params)
        if isinstance(stmt, A.CreateTable):
            return self._do_create_table(stmt)
        if isinstance(stmt, A.CreateType):
            return self._do_create_type(stmt)
        if isinstance(stmt, A.CreateFunction):
            return self._do_create_function(stmt)
        if isinstance(stmt, A.Insert):
            return self._do_insert(stmt, params)
        if isinstance(stmt, A.Update):
            return self._do_update(stmt, params)
        if isinstance(stmt, A.Delete):
            return self._do_delete(stmt, params)
        if isinstance(stmt, A.CreateIndex):
            return self._do_create_index(stmt)
        if isinstance(stmt, A.DropIndex):
            self.catalog.drop_index(stmt.name, stmt.if_exists)
            self.clear_plan_cache()
            return Result([], [])
        if isinstance(stmt, A.DropTable):
            self.catalog.drop_table(stmt.name, stmt.if_exists)
            self.clear_plan_cache()
            return Result([], [])
        if isinstance(stmt, A.DropFunction):
            self.catalog.drop_function(stmt.name, stmt.if_exists)
            self.clear_plan_cache()
            return Result([], [])
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a ``;``-separated script; return one Result per statement."""
        with self.profiler.phase(PARSE):
            statements = parse_script(sql)
        return [self.execute_ast(stmt) for stmt in statements]

    def query_value(self, sql: str, params: Sequence[Value] = ()) -> Value:
        return self.execute(sql, params).scalar()

    def query_all(self, sql: str, params: Sequence[Value] = ()) -> list[tuple]:
        return self.execute(sql, params).rows

    def explain(self, sql: str) -> str:
        """Render the plan tree for a SELECT (EXPLAIN-style)."""
        plan = self._get_plan(sql)
        return plan.explain()

    def reseed(self, seed: int) -> None:
        """Reset the engine RNG (``random()``) for reproducible runs."""
        self.rng = random.Random(seed)

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()
        for fdef in self.catalog.functions.values():
            fdef.parsed_body = None
            fdef.batched_plan = None

    # ------------------------------------------------------------------
    # Planning and running SELECTs
    # ------------------------------------------------------------------

    def _get_plan(self, sql: str):
        profiler = self.profiler
        if self.plan_cache_enabled:
            plan = self._plan_cache.get(sql)
            if plan is not None:
                profiler.bump(PLAN_CACHE_HIT)
                return plan
        profiler.bump(PLAN_CACHE_MISS)
        with profiler.phase(PARSE):
            stmt = parse_statement(sql)
        if not isinstance(stmt, A.SelectStmt):
            raise PlanError("plan cache only holds SELECT statements")
        with profiler.phase(PLAN):
            plan = self.planner.plan_select(stmt)
        if self.plan_cache_enabled:
            self._plan_cache[sql] = plan
        return plan

    def _run_plan(self, plan, params: Sequence[Value]) -> Result:
        profiler = self.profiler
        rt = RuntimeContext(self, params)
        profiler.bump(PLAN_INSTANTIATIONS)
        # ExecutorStart: copy the cached plan into runtime state.
        profiler.push(EXEC_START)
        try:
            state = plan.instantiate(rt)
            state.open(None)
        finally:
            profiler.pop()
        profiler.push(EXEC_RUN)
        try:
            rows = state.fetch_all()
        finally:
            profiler.pop()
        # ExecutorEnd: tear down per-execution state.
        profiler.push(EXEC_END)
        try:
            state.close()
            del state
        finally:
            profiler.pop()
        return Result(list(plan.output_columns), rows)

    # ------------------------------------------------------------------
    # Function invocation (the Q->f context switch)
    # ------------------------------------------------------------------

    def call_function(self, fdef: FunctionDef, args: list[Value]) -> Value:
        """Invoke a registered function from a SQL expression."""
        if len(args) != fdef.arity:
            raise ExecutionError(
                f"function {fdef.name}() takes {fdef.arity} arguments, "
                f"got {len(args)}")
        self.profiler.bump(SWITCH_Q_TO_F)
        if fdef.kind == "builtin":
            rt = RuntimeContext(self, ())
            return fdef.impl(rt, *args)  # type: ignore[misc]
        if fdef.kind == "plpgsql":
            from ..plsql.interpreter import call_plpgsql
            return call_plpgsql(self, fdef, args)
        if fdef.kind == "sql":
            return self._call_sql_function(fdef, args)
        if fdef.kind == "compiled":
            # Not inlined (planner.inline_compiled off, or dynamic call):
            # run the stored query with the arguments as parameters.  The
            # plan is cached on the FunctionDef (invalidated together with
            # the statement plan cache) — Qf never changes between calls,
            # so re-planning it per invocation was pure overhead.
            plan = fdef.parsed_body
            if plan is None:
                with self.profiler.phase(PLAN):
                    plan = self.planner.plan_select(fdef.query)
                if self.plan_cache_enabled:
                    fdef.parsed_body = plan
            return self._run_plan(plan, args).scalar()
        raise ExecutionError(f"unknown function kind {fdef.kind!r}")

    def _call_sql_function(self, fdef: FunctionDef, args: list[Value]) -> Value:
        """Run a LANGUAGE SQL function body (one SELECT, params by name).

        This is the paper's intermediate **UDF** form.  Note the cost
        profile: the body plan is cached, but instantiation and teardown
        happen per call — and direct recursion hits the stack-depth limit,
        which is exactly why the paper pushes on to WITH RECURSIVE.
        """
        if self._udf_depth >= self.max_udf_depth:
            raise ExecutionError(
                f"stack depth limit exceeded while evaluating {fdef.name}() "
                f"(max_udf_depth={self.max_udf_depth}); consider compiling "
                "the function away")
        if fdef.parsed_body is None:
            with self.profiler.phase(PARSE):
                stmt = parse_statement(fdef.body)
            if not isinstance(stmt, A.SelectStmt):
                raise PlsqlError(
                    f"SQL function {fdef.name} body must be a single SELECT")
            from .astutil import transform_select
            mapping = {name.lower(): index + 1
                       for index, name in enumerate(fdef.param_names)}

            def bind(expr: A.Expr) -> Optional[A.Expr]:
                if isinstance(expr, A.ColumnRef) and len(expr.parts) == 1:
                    index = mapping.get(expr.parts[0].lower())
                    if index is not None:
                        return A.Param(index)
                return None

            stmt = transform_select(stmt, bind)
            with self.profiler.phase(PLAN):
                plan = self.planner.plan_select(stmt)
            fdef.parsed_body = plan
        self._udf_depth += 1
        try:
            result = self._run_plan(fdef.parsed_body, args)
        finally:
            self._udf_depth -= 1
        if len(result.columns) != 1 or len(result.rows) > 1:
            raise ExecutionError(
                f"SQL function {fdef.name} must return one scalar")
        return result.rows[0][0] if result.rows else None

    def register_compiled_function(self, name: str, param_names: list[str],
                                   param_types: list[str], return_type: str,
                                   query: A.SelectStmt,
                                   batched_query: Optional[A.SelectStmt] = None,
                                   batch_columns: Optional[list[str]] = None,
                                   batch_machine: object = None,
                                   ) -> FunctionDef:
        """Register the pure-SQL query produced by the compiler as *name*.

        Subsequent queries calling ``name(...)`` get the query inlined at
        plan time (replacing any previous PL/pgSQL definition).  When
        *batched_query* is supplied (see
        :func:`repro.compiler.template.build_batched_template_query`), the
        planner may evaluate whole relations of calls through one
        set-oriented trampoline instead of one scalar subquery per row.
        """
        fdef = FunctionDef(name=name.lower(), kind="compiled",
                           param_names=list(param_names),
                           param_types=list(param_types),
                           return_type=return_type, query=query,
                           batched_query=batched_query,
                           batch_columns=list(batch_columns or []),
                           batch_machine=batch_machine)
        self.catalog.register_function(fdef, replace=True)
        self.clear_plan_cache()
        return fdef

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def _do_create_table(self, stmt: A.CreateTable) -> Result:
        self.catalog.create_table(stmt.name,
                                  [c.name for c in stmt.columns],
                                  [c.type_name for c in stmt.columns],
                                  stmt.if_not_exists)
        self.clear_plan_cache()
        return Result([], [])

    def _do_create_index(self, stmt: A.CreateIndex) -> Result:
        from .profiler import SORTED_INDEX_BUILDS
        created = self.catalog.create_index(
            stmt.name, stmt.table,
            [(column.name, column.descending) for column in stmt.columns],
            stmt.if_not_exists)
        if created is not None and created[1]:
            self.profiler.bump(SORTED_INDEX_BUILDS)
        # Plans choose access paths (range scans, sort elimination, merge
        # joins) from the indexes visible at plan time; cached plans must
        # not outlive an index change in either direction.
        self.clear_plan_cache()
        return Result([], [])

    def _do_create_type(self, stmt: A.CreateType) -> Result:
        self.catalog.create_type(stmt.name,
                                 [f.name for f in stmt.fields],
                                 [f.type_name for f in stmt.fields])
        self.clear_plan_cache()
        return Result([], [])

    def _do_create_function(self, stmt: A.CreateFunction) -> Result:
        language = stmt.language.lower()
        if language not in ("sql", "plpgsql"):
            raise CatalogError(f"unsupported function language {stmt.language!r}")
        fdef = FunctionDef(
            name=stmt.name.lower(), kind=language,
            param_names=[p.name for p in stmt.params],
            param_types=[p.type_name for p in stmt.params],
            return_type=stmt.return_type, body=stmt.body)
        self.catalog.register_function(fdef, replace=stmt.replace)
        self.clear_plan_cache()
        return Result([], [])

    def _do_insert(self, stmt: A.Insert, params: Sequence[Value]) -> Result:
        table = self.catalog.get_table(stmt.table)
        with self.profiler.phase(PLAN):
            plan = self.planner.plan_select(stmt.source)
        source = self._run_plan(plan, params)
        if stmt.columns is not None:
            positions = [table.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(table.column_names)))
        full_rows: list[tuple] = []
        for row in source.rows:
            if len(row) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, got {len(row)}")
            full: list[Value] = [None] * len(table.column_names)
            for position, value in zip(positions, row):
                full[position] = self._coerce(value, table.column_types[position])
            full_rows.append(tuple(full))
        # One bulk insert: index maintenance sees the whole batch at once.
        inserted = table.insert_many(full_rows)
        return Result(["count"], [(inserted,)])

    def _coerce(self, value: Value, type_name: str) -> Value:
        if value is None:
            return None
        composite = self.catalog.get_type(type_name)
        try:
            return cast_value(value, type_name, composite)
        except TypeError_:
            return value  # keep as-is; the engine is dynamically typed

    def _table_predicate(self, table, where: Optional[A.Expr]):
        """Compile *where* against the table's row scope; return row->bool."""
        scope = Scope([Relation(table.name, table.column_names)])
        compiler = ExprCompiler(scope, self.planner)
        predicate = compiler.compile(where) if where is not None else None
        subplans = compiler.subplans
        rt = RuntimeContext(self, ())
        from .executor.scan import make_slots
        slots = make_slots(rt, None, subplans)

        def check(row) -> bool:
            if predicate is None:
                return True
            ctx = EvalContext(rt, (row,), slots=slots)
            return predicate(ctx) is True

        return check, rt, compiler

    def _do_update(self, stmt: A.Update, params: Sequence[Value]) -> Result:
        table = self.catalog.get_table(stmt.table)
        check, rt, compiler = self._table_predicate(table, stmt.where)
        rt.params = tuple(params)
        assignments = [(table.column_index(name), compiler.compile(expr))
                       for name, expr in stmt.assignments]
        from .executor.scan import make_slots
        slots = make_slots(rt, None, compiler.subplans)

        def updater(row):
            ctx = EvalContext(rt, (row,), slots=slots)
            new_row = list(row)
            for position, compiled in assignments:
                new_row[position] = self._coerce(
                    compiled(ctx), table.column_types[position])
            return new_row

        count = table.update_where(check, updater)
        return Result(["count"], [(count,)])

    def _do_delete(self, stmt: A.Delete, params: Sequence[Value]) -> Result:
        table = self.catalog.get_table(stmt.table)
        check, rt, _compiler = self._table_predicate(table, stmt.where)
        rt.params = tuple(params)
        count = table.delete_where(check)
        return Result(["count"], [(count,)])


def _looks_like_select(sql: str) -> bool:
    stripped = sql.lstrip().lower()
    for head in ("select", "with", "values", "("):
        if stripped.startswith(head):
            return True
    return False
