"""The :class:`Database` facade: SQL entry point, plan cache, profiling.

Execution life cycle (mirroring PostgreSQL, which is what makes the paper's
cost accounting reproducible here):

1. **Parse** — text to AST (only on plan-cache miss),
2. **Plan** — AST to immutable plan tree (cached by SQL text + the
   plan-affecting settings fingerprint),
3. **ExecutorStart** — instantiate the plan into per-execution state,
4. **ExecutorRun** — pull all tuples,
5. **ExecutorEnd** — tear the state down.

Every embedded-query evaluation performed by the PL/pgSQL interpreter runs
through this same path, so steps 3 and 5 recur per evaluation — that is the
``f→Qi`` overhead of Section 1.  A compiled function is inlined into its
calling query by the planner and thus passes through steps 1–3 exactly once.

Statement dispatch is a single **parse → classify → dispatch** path: every
statement kind (including SELECTs behind leading comments or parentheses)
is parsed once and routed from its AST type, and plan-cache eligibility is
an AST property (only ``SelectStmt`` plans are cached), not a prefix match
on the SQL text.

``Database.execute`` remains the thin compatibility facade over the layered
session API in :mod:`repro.sql.session`: it runs every statement in the
*root session*, whose settings overlay writes straight through to the
global values.  ``Database.connect()`` opens an isolated session with its
own settings overlay, notices, and prepared-statement registry.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Sequence

from . import ast as A
from .catalog import Catalog, FunctionDef
from .errors import (CatalogError, CompileError, ExecutionError,
                     NameResolutionError, PlanError, PlsqlError,
                     QueryCanceledError, SqlError, TypeError_)
from .expr import EvalContext, ExprCompiler, Relation, RuntimeContext, Scope
from .parser import parse_script, parse_statement
from .planner import Planner
from .profiler import (EXEC_END, EXEC_RUN, EXEC_START, PARSE, PLAN,
                       PLAN_CACHE_EVICTIONS, PLAN_CACHE_HIT, PLAN_CACHE_MISS,
                       PLAN_INSTANTIATIONS, PREPARED_EXECUTIONS,
                       QUERIES_CANCELED, SETTINGS_ASSIGNMENTS, SWITCH_Q_TO_F,
                       TXN_BEGUN, Profiler)
from .settings import SettingsRegistry
from .storage import BufferManager
from .txn import TransactionManager
from .types import cast_value
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .session import Connection

#: Classification tags returned by the dispatch layer; cursors map them to
#: PEP-249 ``description`` / ``rowcount`` semantics.
ROWS = "rows"       # produces a result set (SELECT, VALUES, SHOW, EXPLAIN)
COUNT = "count"     # DML returning an affected-row count
UTILITY = "utility"  # DDL and session statements with no result


class Result:
    """A query result: column names plus a list of row tuples."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: list[str], rows: list[tuple]):
        self.columns = columns
        self.rows = rows

    def scalar(self) -> Value:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns")
        return self.rows[0][0]

    def first(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Result({self.columns}, {len(self.rows)} rows)"


class PlanCache:
    """LRU cache of SELECT plans keyed by (SQL text, settings fingerprint).

    The fingerprint component (see :meth:`repro.sql.settings.
    SettingsRegistry.fingerprint`) makes plan-affecting SET statements —
    and per-session overlays — safe without explicit invalidation: a plan
    built under one combination of flags is simply invisible under any
    other.  The LRU bound (``SET plan_cache_size = N``) keeps long-running
    sessions from growing memory without bound; evictions are counted.
    """

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    def get(self, key: tuple):
        plan = self._entries.get(key)
        if plan is not None:
            self._entries.move_to_end(key)
        return plan

    def put(self, key: tuple, plan, capacity: int) -> int:
        """Insert and trim to *capacity*; returns the number of evictions."""
        self._entries[key] = plan
        self._entries.move_to_end(key)
        return self.trim(capacity)

    def trim(self, capacity: int) -> int:
        evicted = 0
        while len(self._entries) > max(capacity, 0):
            self._entries.popitem(last=False)
            evicted += 1
        return evicted

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class _TxnScope:
    """Context manager giving every statement a transaction to run in.

    Reentrant: the outermost scope on the dispatch path wins, inner ones
    are no-ops (``_execute_info`` wraps ``_dispatch_ast`` wraps prepared
    re-dispatch, and all three are public entry points).

    Three cases:

    * the session has an open explicit block — install it as current and
      open a statement (command-id bump + implicit savepoint mark; on
      error the statement's effects are undone but the block survives,
      a deliberately friendlier divergence from PostgreSQL's
      abort-until-ROLLBACK),
    * no block — begin a throwaway autocommit transaction, committed on
      success and rolled back on error,
    * the statement was BEGIN — it flips the autocommit transaction to
      explicit and parks it on the session; the scope then leaves it
      open on exit.

    The scope also takes the database's **execution lock** for its whole
    duration (statement granularity, not transaction granularity): threaded
    callers — the wire server's worker pool above all — serialize at this
    choke point, so ``txnman.current``, the visible-rows caches and the
    profiler's phase stack are only ever touched by one thread at a time,
    while a session holding an open BEGIN block still releases the lock
    between its statements (conflicting writers fail fast with
    ``SerializationError`` instead of deadlocking).
    """

    __slots__ = ("db", "session", "txn", "nested", "mark")

    def __init__(self, db: "Database", session):
        self.db = db
        self.session = session

    def __enter__(self):
        self.db._exec_lock.acquire()
        mgr = self.db.txnman
        if mgr.current is not None:
            self.nested = True
            return self
        self.nested = False
        session = self.session
        txn = session._txn if session is not None else None
        if txn is None or txn.finished:
            txn = mgr.begin(session=session)
        self.txn = txn
        mgr.current = txn
        self.mark = txn.begin_statement()
        # Arm the session's cancel token for this statement: clears any
        # stale trip and starts the statement_timeout clock (the session
        # overlay was applied before the scope opened, so a SET LOCAL
        # statement_timeout is already in effect here).  The token is
        # published on the database so RuntimeContexts built anywhere on
        # this statement's call path (subplans, UDFs, the interpreter)
        # poll the same flag the wire server trips cross-thread.
        if session is not None:
            token = session.cancel
            token.arm(self.db.statement_timeout)
            self.db._active_cancel = token
        return self

    def __exit__(self, exc_type, exc, tb):
        try:
            if self.nested:
                return False
            db = self.db
            if db._active_cancel is not None:
                db._active_cancel.disarm()
                db._active_cancel = None
            if exc_type is not None and issubclass(exc_type,
                                                   QueryCanceledError):
                db.profiler.bump(QUERIES_CANCELED)
            db.txnman.current = None
            txn = self.txn
            if txn.finished:
                # COMMIT / ROLLBACK ran inside this statement.
                if self.session is not None and self.session._txn is txn:
                    self.session._txn = None
            elif txn.explicit:
                # Either the session's open block, or this statement was the
                # BEGIN that opened one: statement-level atomicity only.
                # A canceled statement takes this same path, which is what
                # keeps the block's earlier work alive through a cancel.
                if exc_type is not None:
                    txn.rollback_to_mark(self.mark)
            elif exc_type is None:
                txn.commit()
            else:
                txn.rollback()
            if exc_type is None and db.wal is not None:
                # Still under the exec lock with this statement's txn
                # retired — the safe window for auto-compaction (the
                # manager defers itself while other writers are open).
                db.wal.maybe_checkpoint()
            return False
        finally:
            self.db._exec_lock.release()


class Database:
    """An in-memory relational database with PL/pgSQL support.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t(x int)")
    >>> _ = db.execute("INSERT INTO t VALUES (1), (2)")
    >>> db.execute("SELECT sum(x) FROM t").scalar()
    3

    The sessionful surface lives behind :meth:`connect`:

    >>> conn = db.connect()
    >>> cur = conn.cursor()
    >>> _ = cur.execute("SELECT x FROM t ORDER BY x")
    >>> cur.fetchall()
    [(1,), (2,)]
    """

    def __init__(self, seed: int = 0, profile: bool = True,
                 path: Optional[str] = None):
        import sys
        if sys.getrecursionlimit() < 20000:
            # Directly recursive SQL UDFs nest many Python frames per call;
            # let our own max_udf_depth guard fire before CPython's.
            sys.setrecursionlimit(20000)
        self.buffers = BufferManager()
        self.rng = random.Random(seed)
        #: The execution lock: every statement (and every session
        #: activation) runs under it, making one Database safe to share
        #: between threads — the wire server's bounded worker pool drives
        #: many sessions concurrently.  An RLock, because dispatch paths
        #: nest (_execute_info → prepared re-dispatch → _dispatch_ast).
        #: Granularity is one statement: sessions holding an open BEGIN
        #: block release it between statements, so interleaved explicit
        #: transactions still conflict-check instead of deadlocking.
        self._exec_lock = threading.RLock()
        self.profiler = Profiler(enabled=profile)
        #: MVCC transaction manager: every statement runs inside one of
        #: its transactions (a throwaway autocommit one unless the session
        #: opened an explicit block) and every heap write/read resolves
        #: through its snapshots.  See repro.sql.txn.
        self.txnman = TransactionManager(self.profiler, db=self)
        self.catalog = Catalog(self.buffers, self.txnman)
        self.planner = Planner(self)
        self._plan_cache = PlanCache()
        #: Bumped by clear_plan_cache() (every DDL path): prepared-statement
        #: handles stamp it and replan when it moved under them.
        self._plan_generation = 0
        self.max_recursion_iterations = 10_000_000
        #: Matches PostgreSQL's max_stack_depth behaviour: directly recursive
        #: SQL UDFs (the paper's intermediate UDF form) blow this quickly.
        self.max_udf_depth = 192
        self._udf_depth = 0
        #: Statement budget per PL/pgSQL activation: a loop that never exits
        #: (WHILE over a diverging Collatz sequence, say) raises
        #: ExecutionError instead of hanging the process.  Mirrors the
        #: max_udf_depth guard above; lower it for tests, raise it for
        #: genuinely long-running functions.
        self.max_interp_statements = 10_000_000
        self.plan_cache_enabled = True
        #: LRU bound on cached statement plans (``SET plan_cache_size``);
        #: 0 disables statement-plan caching entirely.
        self.plan_cache_size = 256
        #: Cancel any statement running longer than this many milliseconds
        #: (0 = no timeout).  Armed per statement on the session's
        #: CancelToken by _TxnScope; honors SET LOCAL via the overlay.
        self.statement_timeout = 0
        #: Auto-checkpoint the WAL once this many records have been
        #: appended since the last compaction (0 disables; CHECKPOINT
        #: still works).  Large enough that short-lived test logs never
        #: compact behind the tests' backs.
        self.wal_checkpoint_interval = 10_000
        #: The cancel token of the statement currently holding the
        #: execution lock (None between statements).  RuntimeContext
        #: snapshots it; the wire server trips it from the event loop.
        self._active_cancel = None
        #: Static-analyzer gate at CREATE FUNCTION time (``SET
        #: check_function_bodies``): 'off' skips analysis, 'warn' reports
        #: diagnostics as notices, 'error' additionally rejects functions
        #: carrying error-severity diagnostics.  Named after PostgreSQL's
        #: setting, but runs the full repro.analysis pass, not just a
        #: syntax check.
        self.check_function_bodies = "warn"
        #: RAISE NOTICE/WARNING/INFO messages from PL/pgSQL execution.
        #: Sessions swap in their own list while executing, so notices
        #: raised on a Connection land on that Connection.
        self.notices: list[str] = []
        #: When set to a dict, the PL/pgSQL interpreter accumulates per-
        #: statement phase timings into it (Figure 3's profile bars):
        #: label -> {phase -> seconds}.
        self.plsql_statement_profile: Optional[dict] = None
        #: Declarative settings registry (SET / SHOW / RESET); bound to the
        #: attributes above and on the planner, so the legacy attribute
        #: surface and the SQL surface always agree.
        self.settings = SettingsRegistry(self)
        self._setting_defaults = self.settings.defaults()
        self._root_session: Optional["Connection"] = None
        #: Durable mode (``Database(path=...)``): a write-ahead log that
        #: replays committed transactions on open and fsyncs on commit.
        self.wal = None
        if path is not None:
            from .wal import WalManager
            self.wal = WalManager(self, path)
            self.txnman.wal = self.wal

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def session(self) -> "Connection":
        """The root session backing the ``Database.execute`` facade.

        Its settings overlay writes through to the global values and its
        notices list *is* ``Database.notices`` — the legacy surface is one
        particular session, not a separate code path.
        """
        if self._root_session is None:
            from .session import Connection
            self._root_session = Connection(self, root=True)
        return self._root_session

    def connect(self) -> "Connection":
        """Open a new session: per-session settings overlay, notices, and
        prepared-statement registry (see :mod:`repro.sql.session`)."""
        from .session import Connection
        return Connection(self)

    def execute(self, sql: str, params: Sequence[Value] = ()) -> Result:
        """Execute one SQL statement (text) and return its result."""
        return self._execute_info(sql, params, self.session)[1]

    def execute_ast(self, stmt: A.Statement, params: Sequence[Value] = ()) -> Result:
        """Execute a pre-parsed statement AST."""
        return self._dispatch_ast(stmt, params, self.session)[1]

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a ``;``-separated script; return one Result per statement."""
        return self._execute_script(sql, self.session)

    def query_value(self, sql: str, params: Sequence[Value] = ()) -> Value:
        return self.execute(sql, params).scalar()

    def query_all(self, sql: str, params: Sequence[Value] = ()) -> list[tuple]:
        return self.execute(sql, params).rows

    def explain(self, sql: str) -> str:
        """Render the plan tree for a SELECT (or EXECUTE), EXPLAIN-style."""
        with self._exec_lock:
            with self.profiler.phase(PARSE):
                stmt = parse_statement(sql)
            return self._explain_ast(stmt, self.session)

    def reseed(self, seed: int) -> None:
        """Reset the engine RNG (``random()``) for reproducible runs."""
        self.rng = random.Random(seed)

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()
        self._plan_generation += 1
        self._clear_function_plan_caches()

    def _clear_function_plan_caches(self) -> None:
        """Drop the per-function body plan caches (compiled/SQL bodies,
        PL/pgSQL runtimes).  Unlike statement plans and prepared handles,
        these are *not* fingerprint-stamped, so any plan-affecting
        settings change must clear them explicitly — globally via
        ``SettingsRegistry.assign``, per-session via the overlay
        activation in :mod:`repro.sql.session`."""
        for fdef in self.catalog.functions.values():
            fdef.parsed_body = None
            fdef.batched_plan = None
            # Inferred volatility depends on callees and the schema, both
            # of which DDL can change; re-inference on next use is cheap.
            fdef.reset_analysis()

    def _trim_plan_cache(self) -> None:
        """Apply a lowered ``plan_cache_size`` immediately."""
        evicted = self._plan_cache.trim(self.plan_cache_size)
        if evicted:
            self.profiler.bump(PLAN_CACHE_EVICTIONS, evicted)

    # ------------------------------------------------------------------
    # Parse -> classify -> dispatch
    # ------------------------------------------------------------------

    def _cache_enabled(self) -> bool:
        return self.plan_cache_enabled and self.plan_cache_size > 0

    def _execute_info(self, sql: str, params: Sequence[Value],
                      session: "Connection") -> tuple[str, Result]:
        """Execute *sql* in *session*; returns ``(kind, result)``.

        The plan-cache probe happens on the raw text *before* parsing —
        the cache only ever holds SELECT plans (an AST-derived property),
        so a hit both classifies and plans in one dictionary lookup.
        Leading comments and parenthesised SELECTs therefore take exactly
        the same cached path as a bare ``SELECT``.
        """
        profiler = self.profiler
        with _TxnScope(self, session):
            key = None
            if self._cache_enabled():
                key = (sql, self.settings.fingerprint())
                plan = self._plan_cache.get(key)
                if plan is not None:
                    profiler.bump(PLAN_CACHE_HIT)
                    return ROWS, self._run_plan(plan, params)
            with profiler.phase(PARSE):
                stmt = parse_statement(sql)
            if isinstance(stmt, A.SelectStmt):
                profiler.bump(PLAN_CACHE_MISS)
                with profiler.phase(PLAN):
                    plan = self.planner.plan_select(stmt)
                if key is not None:
                    evicted = self._plan_cache.put(key, plan,
                                                   self.plan_cache_size)
                    if evicted:
                        profiler.bump(PLAN_CACHE_EVICTIONS, evicted)
                return ROWS, self._run_plan(plan, params)
            return self._dispatch_ast(stmt, params, session)

    def _execute_script(self, sql: str, session: "Connection") -> list[Result]:
        with self.profiler.phase(PARSE):
            statements = parse_script(sql)
        session.begin_script()
        try:
            return [self._dispatch_ast(stmt, (), session)[1]
                    for stmt in statements]
        finally:
            session.end_script()

    def _execute_many(self, sql: str, param_sets,
                      session: "Connection") -> tuple[str, Result]:
        """``Cursor.executemany``: parse once, run per parameter set.

        INSERT is special-cased into :meth:`_do_insert_many` — one bulk
        ``insert_many`` for the whole batch.  Other DML loops over the
        parsed AST and sums the affected-row counts; statements producing
        result sets run but their rows are discarded (PEP-249 leaves this
        undefined; we keep the side effects and report no result).
        """
        with self.profiler.phase(PARSE):
            stmt = parse_statement(sql)
        if isinstance(stmt, A.Insert):
            with _TxnScope(self, session):
                return COUNT, self._do_insert_many(stmt, list(param_sets))
        total = 0
        saw_count = False
        for params in param_sets:
            kind, result = self._dispatch_ast(stmt, params, session)
            if kind == COUNT:
                saw_count = True
                total += result.rows[0][0] if result.rows else 0
        if saw_count:
            return COUNT, Result(["count"], [(total,)])
        return UTILITY, Result([], [])

    def _dispatch_ast(self, stmt: A.Statement, params: Sequence[Value],
                      session: "Connection") -> tuple[str, Result]:
        """Route one parsed statement by AST type; returns ``(kind, result)``."""
        with _TxnScope(self, session):
            return self._dispatch_in_txn(stmt, params, session)

    def _dispatch_in_txn(self, stmt: A.Statement, params: Sequence[Value],
                         session: "Connection") -> tuple[str, Result]:
        if isinstance(stmt, A.SelectStmt):
            with self.profiler.phase(PLAN):
                plan = self.planner.plan_select(stmt)
            return ROWS, self._run_plan(plan, params)
        if isinstance(stmt, A.Insert):
            return COUNT, self._do_insert(stmt, params)
        if isinstance(stmt, A.Update):
            return COUNT, self._do_update(stmt, params)
        if isinstance(stmt, A.Delete):
            return COUNT, self._do_delete(stmt, params)
        if isinstance(stmt, A.ExecuteStmt):
            return self._do_execute_prepared(stmt, params, session)
        if isinstance(stmt, A.PrepareStmt):
            session.register_prepared(stmt.name, stmt.statement,
                                      stmt.param_types)
            return UTILITY, Result([], [])
        if isinstance(stmt, A.DeallocateStmt):
            session.deallocate(stmt.name)
            return UTILITY, Result([], [])
        if isinstance(stmt, A.SetStmt):
            return UTILITY, self._do_set(stmt, params, session)
        if isinstance(stmt, A.ShowStmt):
            return ROWS, self._do_show(stmt)
        if isinstance(stmt, A.ResetStmt):
            return UTILITY, self._do_reset(stmt, session)
        if isinstance(stmt, A.ExplainStmt):
            lines = self._explain_ast(stmt.statement, session).split("\n")
            return ROWS, Result(["QUERY PLAN"], [(line,) for line in lines])
        if isinstance(stmt, A.CreateTable):
            return UTILITY, self._do_create_table(stmt)
        if isinstance(stmt, A.CreateType):
            return UTILITY, self._do_create_type(stmt)
        if isinstance(stmt, A.CreateFunction):
            return UTILITY, self._do_create_function(stmt)
        if isinstance(stmt, A.CreateIndex):
            return UTILITY, self._do_create_index(stmt)
        if isinstance(stmt, A.DropIndex):
            return UTILITY, self._do_drop_index(stmt)
        if isinstance(stmt, A.DropTable):
            return UTILITY, self._do_drop_table(stmt)
        if isinstance(stmt, A.DropFunction):
            return UTILITY, self._do_drop_function(stmt)
        if isinstance(stmt, A.BeginStmt):
            return UTILITY, self._do_begin(session)
        if isinstance(stmt, A.CommitStmt):
            return UTILITY, self._do_commit(session)
        if isinstance(stmt, A.RollbackStmt):
            return UTILITY, self._do_rollback(stmt, session)
        if isinstance(stmt, A.SavepointStmt):
            return UTILITY, self._do_savepoint(stmt, session)
        if isinstance(stmt, A.ReleaseStmt):
            return UTILITY, self._do_release(stmt, session)
        if isinstance(stmt, A.CheckpointStmt):
            return UTILITY, self._do_checkpoint(session)
        if isinstance(stmt, A.CheckFunctionStmt):
            return ROWS, self._do_check_function(stmt)
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Transaction control
    # ------------------------------------------------------------------

    def _session_txn(self, session: "Connection"):
        """The session's open explicit transaction, or None."""
        txn = session._txn
        if txn is not None and not txn.finished and txn.explicit:
            return txn
        return None

    def _do_begin(self, session: "Connection") -> Result:
        if self._session_txn(session) is not None:
            self.notices.append(
                "WARNING: there is already a transaction in progress")
            return Result([], [])
        # The dispatch scope already opened an autocommit transaction for
        # this very statement: promote it instead of opening another.
        txn = self.txnman.current
        txn.make_explicit(session)
        session._txn = txn
        self.profiler.bump(TXN_BEGUN)
        return Result([], [])

    def _do_commit(self, session: "Connection") -> Result:
        txn = self._session_txn(session)
        if txn is None:
            self.notices.append(
                "WARNING: there is no transaction in progress")
            return Result([], [])
        txn.commit()
        session._txn = None
        return Result([], [])

    def _do_rollback(self, stmt: A.RollbackStmt,
                     session: "Connection") -> Result:
        txn = self._session_txn(session)
        if stmt.savepoint is not None:
            if txn is None:
                raise ExecutionError(
                    "ROLLBACK TO SAVEPOINT can only be used in "
                    "transaction blocks")
            txn.rollback_to_savepoint(stmt.savepoint)
            return Result([], [])
        if txn is None:
            self.notices.append(
                "WARNING: there is no transaction in progress")
            return Result([], [])
        txn.rollback()
        session._txn = None
        return Result([], [])

    def _do_savepoint(self, stmt: A.SavepointStmt,
                      session: "Connection") -> Result:
        txn = self._session_txn(session)
        if txn is None:
            raise ExecutionError(
                "SAVEPOINT can only be used in transaction blocks")
        txn.define_savepoint(stmt.name)
        return Result([], [])

    def _do_release(self, stmt: A.ReleaseStmt,
                    session: "Connection") -> Result:
        txn = self._session_txn(session)
        if txn is None:
            raise ExecutionError(
                "RELEASE SAVEPOINT can only be used in transaction blocks")
        txn.release_savepoint(stmt.name)
        return Result([], [])

    def _do_checkpoint(self, session: "Connection") -> Result:
        if session is not None and self._session_txn(session) is not None:
            raise ExecutionError(
                "CHECKPOINT cannot run inside a transaction block")
        if self.wal is None:
            self.notices.append(
                "WARNING: database is not durable; CHECKPOINT is a no-op")
            return Result([], [])
        if self.txnman.active_xids:
            # Another session's write transaction is open; a snapshot now
            # would promote its uncommitted catalog/heap state.
            raise ExecutionError(
                "CHECKPOINT requires no write transaction in progress")
        self.wal.checkpoint()
        return Result([], [])

    def _explain_ast(self, stmt: A.Statement, session: "Connection") -> str:
        if isinstance(stmt, A.ExplainStmt):
            stmt = stmt.statement
        if isinstance(stmt, A.SelectStmt):
            with self.profiler.phase(PLAN):
                plan = self.planner.plan_select(stmt)
            return plan.explain()
        if isinstance(stmt, A.ExecuteStmt):
            return session.lookup_prepared(stmt.name).explain()
        raise PlanError(
            f"EXPLAIN supports SELECT and EXECUTE, not "
            f"{type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Session statements: prepared execution and settings
    # ------------------------------------------------------------------

    def _do_execute_prepared(self, stmt: A.ExecuteStmt,
                             params: Sequence[Value],
                             session: "Connection") -> tuple[str, Result]:
        handle = session.lookup_prepared(stmt.name)
        return handle.dispatch(self._eval_standalone(stmt.args, params))

    def run_prepared(self, handle, args: Sequence[Value]) -> tuple[str, Result]:
        """Execute a :class:`~repro.sql.session.PreparedStatement` body.

        SELECT handles run their per-handle cached plan (replanned lazily
        when the DDL generation or settings fingerprint moved — see
        ``PreparedStatement.plan``); DML handles re-dispatch their AST.
        """
        self.profiler.bump(PREPARED_EXECUTIONS)
        stmt = handle.statement
        with _TxnScope(self, handle.session):
            if isinstance(stmt, A.SelectStmt):
                return ROWS, self._run_plan(handle.plan(), args)
            return self._dispatch_in_txn(stmt, args, handle.session)

    def _eval_standalone(self, exprs: Sequence[A.Expr],
                         params: Sequence[Value]) -> list[Value]:
        """Evaluate row-free expressions (EXECUTE arguments, SET values):
        literals, arithmetic, ``$n`` references to *params*, scalar
        subqueries — anything that needs no FROM-clause row context."""
        from .executor.scan import make_slots
        compiler = ExprCompiler(Scope([]), self.planner)
        compiled = [compiler.compile(expr) for expr in exprs]
        rt = RuntimeContext(self, params)
        ctx = EvalContext(rt, (), slots=make_slots(rt, None, compiler.subplans))
        return [c(ctx) for c in compiled]

    def _do_set(self, stmt: A.SetStmt, params: Sequence[Value],
                session: "Connection") -> Result:
        if stmt.value is None:          # SET name = DEFAULT
            return self._do_reset(A.ResetStmt(stmt.name), session)
        if isinstance(stmt.value, A.Literal):
            raw = stmt.value.value
        else:
            [raw] = self._eval_standalone([stmt.value], params)
        self.profiler.bump(SETTINGS_ASSIGNMENTS)
        if stmt.local:
            session.set_local(stmt.name, raw)
        else:
            session.set_setting(stmt.name, raw)
        return Result([], [])

    def _do_show(self, stmt: A.ShowStmt) -> Result:
        if stmt.name is not None:
            return Result([stmt.name.lower()],
                          [(self.settings.show(stmt.name),)])
        rows = [(s.name, s.format(s.get(self)), s.description)
                for s in sorted(self.settings, key=lambda s: s.name)]
        return Result(["name", "setting", "description"], rows)

    def _do_reset(self, stmt: A.ResetStmt, session: "Connection") -> Result:
        self.profiler.bump(SETTINGS_ASSIGNMENTS)
        if stmt.name is None:
            session.reset_all_settings()
        else:
            session.reset_setting(stmt.name)
        return Result([], [])

    # ------------------------------------------------------------------
    # Planning and running SELECTs
    # ------------------------------------------------------------------

    def _run_plan(self, plan, params: Sequence[Value]) -> Result:
        profiler = self.profiler
        rt = RuntimeContext(self, params)
        profiler.bump(PLAN_INSTANTIATIONS)
        # ExecutorStart: copy the cached plan into runtime state.
        profiler.push(EXEC_START)
        try:
            state = plan.instantiate(rt)
            state.open(None)
        finally:
            profiler.pop()
        profiler.push(EXEC_RUN)
        try:
            rows = state.fetch_all()
        finally:
            profiler.pop()
        # ExecutorEnd: tear down per-execution state.
        profiler.push(EXEC_END)
        try:
            state.close()
            del state
        finally:
            profiler.pop()
        return Result(list(plan.output_columns), rows)

    # ------------------------------------------------------------------
    # Function invocation (the Q->f context switch)
    # ------------------------------------------------------------------

    def call_function(self, fdef: FunctionDef, args: list[Value]) -> Value:
        """Invoke a registered function from a SQL expression."""
        if len(args) != fdef.arity:
            raise ExecutionError(
                f"function {fdef.name}() takes {fdef.arity} arguments, "
                f"got {len(args)}")
        self.profiler.bump(SWITCH_Q_TO_F)
        if fdef.kind == "builtin":
            rt = RuntimeContext(self, ())
            return fdef.impl(rt, *args)  # type: ignore[misc]
        if fdef.kind == "plpgsql":
            from ..plsql.interpreter import call_plpgsql
            return call_plpgsql(self, fdef, args)
        if fdef.kind == "sql":
            return self._call_sql_function(fdef, args)
        if fdef.kind == "compiled":
            # Not inlined (planner.inline_compiled off, or dynamic call):
            # run the stored query with the arguments as parameters.  The
            # plan is cached on the FunctionDef (invalidated together with
            # the statement plan cache) — Qf never changes between calls,
            # so re-planning it per invocation was pure overhead.
            plan = fdef.parsed_body
            if plan is None:
                with self.profiler.phase(PLAN):
                    plan = self.planner.plan_select(fdef.query)
                if self.plan_cache_enabled:
                    fdef.parsed_body = plan
            return self._run_plan(plan, args).scalar()
        raise ExecutionError(f"unknown function kind {fdef.kind!r}")

    def _call_sql_function(self, fdef: FunctionDef, args: list[Value]) -> Value:
        """Run a LANGUAGE SQL function body (one SELECT, params by name).

        This is the paper's intermediate **UDF** form.  Note the cost
        profile: the body plan is cached, but instantiation and teardown
        happen per call — and direct recursion hits the stack-depth limit,
        which is exactly why the paper pushes on to WITH RECURSIVE.
        """
        if self._udf_depth >= self.max_udf_depth:
            raise ExecutionError(
                f"stack depth limit exceeded while evaluating {fdef.name}() "
                f"(max_udf_depth={self.max_udf_depth}); consider compiling "
                "the function away")
        if fdef.parsed_body is None:
            with self.profiler.phase(PARSE):
                stmt = parse_statement(fdef.body)
            if not isinstance(stmt, A.SelectStmt):
                raise PlsqlError(
                    f"SQL function {fdef.name} body must be a single SELECT")
            from .astutil import transform_select
            mapping = {name.lower(): index + 1
                       for index, name in enumerate(fdef.param_names)}

            def bind(expr: A.Expr) -> Optional[A.Expr]:
                if isinstance(expr, A.ColumnRef) and len(expr.parts) == 1:
                    index = mapping.get(expr.parts[0].lower())
                    if index is not None:
                        return A.Param(index)
                return None

            stmt = transform_select(stmt, bind)
            with self.profiler.phase(PLAN):
                plan = self.planner.plan_select(stmt)
            fdef.parsed_body = plan
        self._udf_depth += 1
        try:
            result = self._run_plan(fdef.parsed_body, args)
        finally:
            self._udf_depth -= 1
        if len(result.columns) != 1 or len(result.rows) > 1:
            raise ExecutionError(
                f"SQL function {fdef.name} must return one scalar")
        return result.rows[0][0] if result.rows else None

    def register_compiled_function(self, name: str, param_names: list[str],
                                   param_types: list[str], return_type: str,
                                   query: A.SelectStmt,
                                   batched_query: Optional[A.SelectStmt] = None,
                                   batch_columns: Optional[list[str]] = None,
                                   batch_machine: object = None,
                                   source: object = None,
                                   declared_volatility: Optional[str] = None,
                                   ) -> FunctionDef:
        """Register the pure-SQL query produced by the compiler as *name*.

        Subsequent queries calling ``name(...)`` get the query inlined at
        plan time (replacing any previous PL/pgSQL definition).  When
        *batched_query* is supplied (see
        :func:`repro.compiler.template.build_batched_template_query`), the
        planner may evaluate whole relations of calls through one
        set-oriented trampoline instead of one scalar subquery per row.
        """
        fdef = FunctionDef(name=name.lower(), kind="compiled",
                           param_names=list(param_names),
                           param_types=list(param_types),
                           return_type=return_type, query=query,
                           batched_query=batched_query,
                           batch_columns=list(batch_columns or []),
                           batch_machine=batch_machine,
                           plsql_source=source,
                           declared_volatility=declared_volatility)
        self.catalog.register_function(fdef, replace=True)
        self.clear_plan_cache()
        return fdef

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def _ddl_done(self, undo, wal_op) -> None:
        """Close out one successful DDL operation: record its undo
        callable and WAL record on the current transaction (autocommit
        DDL discards the undo at commit) and invalidate cached plans."""
        txn = self.txnman.current
        if txn is not None:
            txn.record_ddl(undo, wal_op)
        self.clear_plan_cache()

    def _do_create_table(self, stmt: A.CreateTable) -> Result:
        if stmt.if_not_exists and self.catalog.has_table(stmt.name):
            self.catalog.create_table(stmt.name,
                                      [c.name for c in stmt.columns],
                                      [c.type_name for c in stmt.columns],
                                      if_not_exists=True)
            self.clear_plan_cache()
            return Result([], [])
        names = [c.name for c in stmt.columns]
        types = [c.type_name for c in stmt.columns]
        table = self.catalog.create_table(stmt.name, names, types,
                                          stmt.if_not_exists)
        key = table.name
        self._ddl_done(lambda: self.catalog.tables.pop(key, None),
                       ["create_table", key, list(table.column_names), types])
        return Result([], [])

    def _do_create_index(self, stmt: A.CreateIndex) -> Result:
        from .profiler import SORTED_INDEX_BUILDS
        columns = [(column.name, column.descending)
                   for column in stmt.columns]
        created = self.catalog.create_index(stmt.name, stmt.table, columns,
                                            stmt.if_not_exists)
        if created is None:  # IF NOT EXISTS hit: nothing changed
            self.clear_plan_cache()
            return Result([], [])
        if created[1]:
            self.profiler.bump(SORTED_INDEX_BUILDS)
        key = created[0].name
        # Plans choose access paths (range scans, sort elimination, merge
        # joins) from the indexes visible at plan time; cached plans must
        # not outlive an index change in either direction.
        self._ddl_done(
            lambda: self.catalog.drop_index(key, if_exists=True),
            ["create_index", key, created[0].table,
             [[name.lower(), bool(desc)] for name, desc in columns]])
        return Result([], [])

    def _do_create_type(self, stmt: A.CreateType) -> Result:
        field_names = [f.name for f in stmt.fields]
        field_types = [f.type_name for f in stmt.fields]
        ctype = self.catalog.create_type(stmt.name, field_names, field_types)
        key = ctype.name
        self._ddl_done(
            lambda: self.catalog.composite_types.pop(key, None),
            ["create_type", key, list(ctype.field_names), field_types])
        return Result([], [])

    def _do_create_function(self, stmt: A.CreateFunction) -> Result:
        language = stmt.language.lower()
        if language not in ("sql", "plpgsql"):
            raise CatalogError(f"unsupported function language {stmt.language!r}")
        fdef = FunctionDef(
            name=stmt.name.lower(), kind=language,
            param_names=[p.name for p in stmt.params],
            param_types=[p.type_name for p in stmt.params],
            return_type=stmt.return_type, body=stmt.body,
            declared_volatility=stmt.volatility)
        key = fdef.name
        prior = self.catalog.functions.get(key)
        self.catalog.register_function(fdef, replace=stmt.replace)

        def undo():
            if prior is None:
                self.catalog.functions.pop(key, None)
            else:
                self.catalog.functions[key] = prior

        self._check_new_function(fdef, undo)
        self._ddl_done(undo, ["create_function",
                              {"name": key, "kind": language,
                               "params": fdef.param_names,
                               "types": fdef.param_types,
                               "ret": fdef.return_type, "body": fdef.body,
                               "volatility": fdef.declared_volatility}])
        return Result([], [])

    def _check_new_function(self, fdef: FunctionDef, undo) -> None:
        """The ``check_function_bodies`` gate: analyze the body the moment
        it is registered.  'warn' turns diagnostics into notices; 'error'
        additionally rejects (and unregisters) functions carrying
        error-severity findings — PostgreSQL's invalid_function_definition,
        SQLSTATE 42P13 territory, surfaced as a CompileError."""
        mode = self.check_function_bodies
        if mode == "off":
            return
        from ..analysis import SEVERITIES, analyze_function
        try:
            diagnostics = analyze_function(self, fdef)
        except Exception:
            # The analyzer must never block otherwise-valid DDL.
            return
        worst = None
        for diagnostic in diagnostics:
            if diagnostic.severity == "info":
                continue
            if worst is None or (SEVERITIES.index(diagnostic.severity)
                                 > SEVERITIES.index(worst)):
                worst = diagnostic.severity
            location = (f" at line {diagnostic.line}"
                        if diagnostic.line is not None else "")
            self.notices.append(
                f"WARNING: {fdef.name}: {diagnostic.code}{location}: "
                f"{diagnostic.message}")
        if mode == "error" and worst == "error":
            undo()
            self.clear_plan_cache()
            raise CompileError(
                f"function {fdef.name!r} rejected by check_function_bodies="
                "error: "
                + "; ".join(f"{d.code}: {d.message}" for d in diagnostics
                            if d.severity == "error"))

    def _do_check_function(self, stmt: A.CheckFunctionStmt) -> Result:
        """``CHECK FUNCTION name | ALL``: run the static analyzer and
        return its findings as rows, one per diagnostic."""
        from ..analysis import analyze_function
        if stmt.name is None:
            targets = [fdef for _, fdef
                       in sorted(self.catalog.functions.items())
                       if fdef.kind != "builtin"]
        else:
            fdef = self.catalog.get_function(stmt.name)
            if fdef is None:
                raise NameResolutionError(
                    f"unknown function {stmt.name!r}")
            targets = [fdef]
        rows = []
        for fdef in targets:
            for diagnostic in analyze_function(self, fdef):
                rows.append(tuple(diagnostic.row()))
        return Result(["function", "severity", "code", "line", "message"],
                      rows)

    def _do_drop_index(self, stmt: A.DropIndex) -> Result:
        key = stmt.name.lower()
        index_def = self.catalog.indexes.get(key)
        self.catalog.drop_index(stmt.name, stmt.if_exists)
        if index_def is None:  # IF EXISTS on a missing index
            self.clear_plan_cache()
            return Result([], [])

        def undo():
            # Re-declaring rebuilds the structure from the current heap —
            # a concurrent writer may have changed it since the drop.
            if key not in self.catalog.indexes \
                    and self.catalog.has_table(index_def.table):
                self.catalog.create_index(
                    key, index_def.table,
                    list(zip(index_def.column_names, index_def.descending)),
                    if_not_exists=True)

        self._ddl_done(undo, ["drop_index", key])
        return Result([], [])

    def _do_drop_table(self, stmt: A.DropTable) -> Result:
        key = stmt.name.lower()
        table = self.catalog.tables.get(key)
        if table is None:  # raises unless IF EXISTS
            self.catalog.drop_table(stmt.name, stmt.if_exists)
            self.clear_plan_cache()
            return Result([], [])
        removed_defs = {name: index_def
                        for name, index_def in self.catalog.indexes.items()
                        if index_def.table == key}
        self.catalog.drop_table(stmt.name, stmt.if_exists)

        def undo():
            # The table object still holds its versions and sorted
            # indexes; restoring it and the dependent IndexDef
            # registrations recovers the pre-drop state exactly.
            self.catalog.tables[key] = table
            self.catalog.indexes.update(removed_defs)

        self._ddl_done(undo, ["drop_table", key])
        return Result([], [])

    def _do_drop_function(self, stmt: A.DropFunction) -> Result:
        key = stmt.name.lower()
        prior = self.catalog.functions.get(key)
        self.catalog.drop_function(stmt.name, stmt.if_exists)
        if prior is None:  # IF EXISTS on a missing function
            self.clear_plan_cache()
            return Result([], [])

        def undo():
            self.catalog.functions[key] = prior

        self._ddl_done(undo, ["drop_function", key])
        return Result([], [])

    def _insert_target(self, stmt: A.Insert):
        """Resolve the target table and column positions of an INSERT."""
        table = self.catalog.get_table(stmt.table)
        if stmt.columns is not None:
            positions = [table.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(table.column_names)))
        return table, positions

    def _materialize_insert_rows(self, table, positions,
                                 source_rows, out: list[tuple]) -> None:
        """Coerce source rows into full-width heap tuples, appending to
        *out*; shared by single INSERT and the executemany bulk path."""
        for row in source_rows:
            if len(row) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, got {len(row)}")
            full: list[Value] = [None] * len(table.column_names)
            for position, value in zip(positions, row):
                full[position] = self._coerce(value, table.column_types[position])
            out.append(tuple(full))

    def _do_insert(self, stmt: A.Insert, params: Sequence[Value]) -> Result:
        table, positions = self._insert_target(stmt)
        with self.profiler.phase(PLAN):
            plan = self.planner.plan_select(stmt.source)
        source = self._run_plan(plan, params)
        full_rows: list[tuple] = []
        self._materialize_insert_rows(table, positions, source.rows, full_rows)
        # One bulk insert: index maintenance sees the whole batch at once.
        inserted = table.insert_many(full_rows)
        return Result(["count"], [(inserted,)])

    def _do_insert_many(self, stmt: A.Insert,
                        param_sets: Sequence[Sequence[Value]]) -> Result:
        """``executemany`` fast path: the INSERT source is planned once,
        instantiated per parameter set, and the accumulated rows land in
        **one** ``insert_many`` — one index-maintenance pass for the whole
        batch instead of N single-row inserts (each of which would also
        re-plan unless the text cache happened to hold the statement).

        A source that reads the target table must see the rows earlier
        parameter sets produced (loop-of-execute semantics), so it keeps
        the plan-once but insert-per-set path.
        """
        from .astutil import references_table
        table, positions = self._insert_target(stmt)
        with self.profiler.phase(PLAN):
            plan = self.planner.plan_select(stmt.source)
        if references_table(stmt.source, table.name):
            txn = self.txnman.current
            total = 0
            for index, params in enumerate(param_sets):
                if txn is not None and index:
                    # Each parameter set must see the rows earlier sets
                    # produced: advance the command id (a row inserted at
                    # command N is visible from command N+1 on).
                    txn.begin_statement()
                source = self._run_plan(plan, params)
                rows: list[tuple] = []
                self._materialize_insert_rows(table, positions, source.rows,
                                              rows)
                total += table.insert_many(rows)
            return Result(["count"], [(total,)])
        full_rows: list[tuple] = []
        for params in param_sets:
            source = self._run_plan(plan, params)
            self._materialize_insert_rows(table, positions, source.rows,
                                          full_rows)
        inserted = table.insert_many(full_rows)
        return Result(["count"], [(inserted,)])

    def _coerce(self, value: Value, type_name: str) -> Value:
        if value is None:
            return None
        composite = self.catalog.get_type(type_name)
        try:
            return cast_value(value, type_name, composite)
        except TypeError_:
            return value  # keep as-is; the engine is dynamically typed

    def _table_predicate(self, table, where: Optional[A.Expr]):
        """Compile *where* against the table's row scope; return row->bool."""
        scope = Scope([Relation(table.name, table.column_names)])
        compiler = ExprCompiler(scope, self.planner)
        predicate = compiler.compile(where) if where is not None else None
        subplans = compiler.subplans
        rt = RuntimeContext(self, ())
        from .executor.scan import make_slots
        slots = make_slots(rt, None, subplans)

        def check(row) -> bool:
            if predicate is None:
                return True
            ctx = EvalContext(rt, (row,), slots=slots)
            return predicate(ctx) is True

        return check, rt, compiler

    def _do_update(self, stmt: A.Update, params: Sequence[Value]) -> Result:
        table = self.catalog.get_table(stmt.table)
        check, rt, compiler = self._table_predicate(table, stmt.where)
        rt.params = tuple(params)
        assignments = [(table.column_index(name), compiler.compile(expr))
                       for name, expr in stmt.assignments]
        from .executor.scan import make_slots
        slots = make_slots(rt, None, compiler.subplans)

        def updater(row):
            ctx = EvalContext(rt, (row,), slots=slots)
            new_row = list(row)
            for position, compiled in assignments:
                new_row[position] = self._coerce(
                    compiled(ctx), table.column_types[position])
            return new_row

        count = table.update_where(check, updater)
        return Result(["count"], [(count,)])

    def _do_delete(self, stmt: A.Delete, params: Sequence[Value]) -> Result:
        table = self.catalog.get_table(stmt.table)
        check, rt, _compiler = self._table_predicate(table, stmt.where)
        rt.params = tuple(params)
        count = table.delete_where(check)
        return Result(["count"], [(count,)])
