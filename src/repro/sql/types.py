"""SQL type names, normalization, and CAST semantics.

The engine is dynamically typed at runtime (see :mod:`repro.sql.values`) but
DDL, ``CAST`` expressions, and the compiler's ``WITH RECURSIVE`` template all
mention type names, so we keep a small registry of scalar types plus
user-defined composite types (e.g. the paper's ``coord``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .errors import TypeError_
from .values import Row, Value

#: Canonical scalar type names and the aliases we accept for them.
_SCALAR_ALIASES = {
    "int": "int",
    "integer": "int",
    "int4": "int",
    "int8": "int",
    "bigint": "int",
    "smallint": "int",
    "float": "float",
    "float8": "float",
    "double precision": "float",
    "real": "float",
    "numeric": "float",
    "decimal": "float",
    "text": "text",
    "varchar": "text",
    "char": "text",
    "character varying": "text",
    "bool": "bool",
    "boolean": "bool",
}


def normalize_type_name(name: str) -> str:
    """Map a type name or alias to its canonical form (lower-cased)."""
    lowered = " ".join(name.lower().split())
    return _SCALAR_ALIASES.get(lowered, lowered)


def is_scalar_type(name: str) -> bool:
    return normalize_type_name(name) in {"int", "float", "text", "bool"}


@dataclass(frozen=True)
class CompositeType:
    """A named record type: ``CREATE TYPE name AS (field type, ...)``."""

    name: str
    field_names: tuple[str, ...]
    field_types: tuple[str, ...]

    def make_row(self, values: Sequence[Value]) -> Row:
        if len(values) != len(self.field_names):
            raise TypeError_(
                f"composite type {self.name} has {len(self.field_names)} fields, "
                f"got {len(values)} values")
        return Row(values, names=self.field_names, type_name=self.name)


def cast_value(value: Value, type_name: str,
               composite: CompositeType | None = None) -> Value:
    """Implement ``CAST(value AS type_name)``.

    NULL casts to NULL of any type.  Numeric <-> text casts follow SQL rules
    (text must look like a literal of the target type).  Casting a bare
    unnamed row to a composite type attaches that type's field names.
    """
    if value is None:
        return None
    target = normalize_type_name(type_name)
    if target == "int":
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float)):
            # SQL rounds half away from zero; Python's round is banker's.
            if isinstance(value, float):
                import math
                return int(math.floor(value + 0.5)) if value >= 0 else int(math.ceil(value - 0.5))
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError:
                raise TypeError_(f"invalid input syntax for type int: {value!r}")
        raise TypeError_(f"cannot cast {type(value).__name__} to int")
    if target == "float":
        if isinstance(value, bool):
            raise TypeError_("cannot cast boolean to float")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                raise TypeError_(f"invalid input syntax for type float: {value!r}")
        raise TypeError_(f"cannot cast {type(value).__name__} to float")
    if target == "text":
        from .values import render_value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float, str)):
            return str(value)
        return render_value(value)
    if target == "bool":
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("t", "true", "yes", "on", "1"):
                return True
            if lowered in ("f", "false", "no", "off", "0"):
                return False
            raise TypeError_(f"invalid input syntax for type boolean: {value!r}")
        if isinstance(value, int):
            return bool(value)
        raise TypeError_(f"cannot cast {type(value).__name__} to bool")
    # Composite target
    if composite is not None:
        if isinstance(value, Row):
            return composite.make_row(value.values)
        raise TypeError_(f"cannot cast {type(value).__name__} to {composite.name}")
    if isinstance(value, Row):
        # Unknown composite name: leave the row as-is but tag the type name.
        return Row(value.values, names=value.names, type_name=target)
    raise TypeError_(f"unknown type name in CAST: {type_name!r}")
