"""Builtin scalar functions, aggregates, and window functions.

Scalar builtins receive an :class:`ExecContext`-like object (anything with an
``rng`` attribute and a ``catalog``) as their first argument so that, e.g.,
``random()`` draws from the engine's seedable RNG — determinism matters for
the interpreted-vs-compiled equivalence tests.

Aggregates are small state machines (`create` / `step` / `final`) shared by
the GROUP BY executor and the window executor, which evaluates them over
frames (the paper's Q2 needs ``SUM(...) OVER`` with ``ROWS UNBOUNDED
PRECEDING EXCLUDE CURRENT ROW``).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from .errors import ExecutionError, NoReturnError, TypeError_
from .values import Row, Value, compare, is_null

# ---------------------------------------------------------------------------
# Scalar builtins
# ---------------------------------------------------------------------------


def _strict(fn: Callable) -> Callable:
    """Wrap *fn* so that any NULL argument yields NULL (SQL STRICT)."""

    def wrapper(ctx, *args):
        if any(a is None for a in args):
            return None
        return fn(ctx, *args)

    wrapper.__name__ = fn.__name__
    return wrapper


def _num(x: Value, what: str) -> float | int:
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        raise TypeError_(f"{what} expects a number, got {type(x).__name__}")
    return x


@_strict
def _fn_sign(ctx, x):
    x = _num(x, "sign")
    return (x > 0) - (x < 0)


@_strict
def _fn_abs(ctx, x):
    return abs(_num(x, "abs"))


@_strict
def _fn_mod(ctx, a, b):
    if b == 0:
        raise ExecutionError("division by zero")
    result = math.fmod(a, b)
    return int(result) if isinstance(a, int) and isinstance(b, int) else result


@_strict
def _fn_power(ctx, a, b):
    return float(a) ** float(b)


@_strict
def _fn_sqrt(ctx, x):
    if x < 0:
        raise ExecutionError("cannot take square root of a negative number")
    return math.sqrt(x)


@_strict
def _fn_floor(ctx, x):
    return math.floor(_num(x, "floor"))


@_strict
def _fn_ceil(ctx, x):
    return math.ceil(_num(x, "ceil"))


@_strict
def _fn_round(ctx, x, digits=0):
    factor = 10 ** digits
    value = _num(x, "round") * factor
    rounded = math.floor(value + 0.5) if value >= 0 else math.ceil(value - 0.5)
    result = rounded / factor
    return int(result) if digits <= 0 else result


@_strict
def _fn_trunc(ctx, x, digits=0):
    factor = 10 ** digits
    result = math.trunc(_num(x, "trunc") * factor) / factor
    return int(result) if digits <= 0 else result


@_strict
def _fn_exp(ctx, x):
    return math.exp(x)


@_strict
def _fn_ln(ctx, x):
    if x <= 0:
        raise ExecutionError("cannot take logarithm of a non-positive number")
    return math.log(x)


@_strict
def _fn_length(ctx, s):
    if isinstance(s, str):
        return len(s)
    raise TypeError_("length expects text")


@_strict
def _fn_substr(ctx, s, start, count=None):
    if not isinstance(s, str):
        raise TypeError_("substr expects text")
    start = int(start)
    if count is not None and count < 0:
        raise ExecutionError("negative substring length not allowed")
    # SQL substr is 1-based and tolerates out-of-range starts.
    begin = max(start, 1)
    if count is None:
        end = len(s) + 1
    else:
        end = start + count
    if end <= begin:
        return ""
    return s[begin - 1:end - 1]


@_strict
def _fn_left(ctx, s, n):
    n = int(n)
    return s[:n] if n >= 0 else s[:len(s) + n]


@_strict
def _fn_right(ctx, s, n):
    n = int(n)
    if n >= 0:
        return s[len(s) - n:] if n <= len(s) else s
    return s[-n:]


@_strict
def _fn_upper(ctx, s):
    return s.upper()


@_strict
def _fn_lower(ctx, s):
    return s.lower()


@_strict
def _fn_strpos(ctx, s, sub):
    return s.find(sub) + 1


@_strict
def _fn_replace(ctx, s, old, new):
    return s.replace(old, new)


@_strict
def _fn_repeat(ctx, s, n):
    return s * max(int(n), 0)


@_strict
def _fn_reverse(ctx, s):
    return s[::-1]


@_strict
def _fn_btrim(ctx, s, chars=" "):
    return s.strip(chars)


@_strict
def _fn_ltrim(ctx, s, chars=" "):
    return s.lstrip(chars)


@_strict
def _fn_rtrim(ctx, s, chars=" "):
    return s.rstrip(chars)


@_strict
def _fn_ascii(ctx, s):
    if not s:
        raise ExecutionError("ascii() of empty string")
    return ord(s[0])


@_strict
def _fn_chr(ctx, n):
    return chr(int(n))


def _fn_concat(ctx, *args):
    # concat ignores NULLs (unlike ||).
    return "".join("" if a is None else _render_text(a) for a in args)


def _render_text(value: Value) -> str:
    from .values import render_value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    return render_value(value)


def _fn_random(ctx):
    return ctx.rng.random()


@_strict
def _fn_setseed(ctx, seed):
    ctx.rng.seed(seed)
    return None


def _fn_greatest(ctx, *args):
    best = None
    for a in args:
        if a is None:
            continue
        if best is None or compare(a, best) > 0:
            best = a
    return best


def _fn_least(ctx, *args):
    best = None
    for a in args:
        if a is None:
            continue
        if best is None or compare(a, best) < 0:
            best = a
    return best


def _fn_nullif(ctx, a, b):
    c = compare(a, b)
    return None if c == 0 else a


@_strict
def _fn_array_length(ctx, arr, dim=1):
    if not isinstance(arr, list):
        raise TypeError_("array_length expects an array")
    if dim != 1:
        return None
    return len(arr) if arr else None


@_strict
def _fn_cardinality(ctx, arr):
    if not isinstance(arr, list):
        raise TypeError_("cardinality expects an array")
    return len(arr)


def _fn_array_append(ctx, arr, item):
    if arr is None:
        arr = []
    if not isinstance(arr, list):
        raise TypeError_("array_append expects an array")
    return list(arr) + [item]


@_strict
def _fn_string_to_array(ctx, s, sep):
    if sep == "":
        return [s]
    return s.split(sep)


@_strict
def _fn_array_to_string(ctx, arr, sep):
    return sep.join(_render_text(v) for v in arr if v is not None)


@_strict
def _fn_pi(ctx):
    return math.pi


def _fn_no_return(ctx, func_name):
    # Planted by the CFG builder on the synthetic fall-off-the-end edge of
    # compiled PL/pgSQL functions; reaching it at run time reproduces
    # PostgreSQL's SQLSTATE 2F005.  Deliberately not @_strict and listed in
    # VOLATILE_FUNCTIONS so it is never constant-folded away.
    raise NoReturnError(
        f"control reached end of function {func_name}() without RETURN")


SCALAR_BUILTINS: dict[str, Callable] = {
    "sign": _fn_sign,
    "abs": _fn_abs,
    "mod": _fn_mod,
    "power": _fn_power,
    "pow": _fn_power,
    "sqrt": _fn_sqrt,
    "floor": _fn_floor,
    "ceil": _fn_ceil,
    "ceiling": _fn_ceil,
    "round": _fn_round,
    "trunc": _fn_trunc,
    "exp": _fn_exp,
    "ln": _fn_ln,
    "length": _fn_length,
    "char_length": _fn_length,
    "character_length": _fn_length,
    "substr": _fn_substr,
    "substring": _fn_substr,
    "left": _fn_left,
    "right": _fn_right,
    "upper": _fn_upper,
    "lower": _fn_lower,
    "strpos": _fn_strpos,
    "position": _fn_strpos,
    "replace": _fn_replace,
    "repeat": _fn_repeat,
    "reverse": _fn_reverse,
    "btrim": _fn_btrim,
    "trim": _fn_btrim,
    "ltrim": _fn_ltrim,
    "rtrim": _fn_rtrim,
    "ascii": _fn_ascii,
    "chr": _fn_chr,
    "concat": _fn_concat,
    "random": _fn_random,
    "setseed": _fn_setseed,
    "greatest": _fn_greatest,
    "least": _fn_least,
    "nullif": _fn_nullif,
    "array_length": _fn_array_length,
    "cardinality": _fn_cardinality,
    "array_append": _fn_array_append,
    "string_to_array": _fn_string_to_array,
    "array_to_string": _fn_array_to_string,
    "pi": _fn_pi,
    "__no_return": _fn_no_return,
}

#: Builtins whose value may change between calls — never constant-folded and
#: re-evaluated per row even with constant arguments.  ``__no_return``
#: raises instead of returning, so folding it would turn a reachable
#: fall-off-the-end into a create-time failure.
VOLATILE_FUNCTIONS = {"random", "setseed", "__no_return"}


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class Aggregate:
    """Interface for aggregate state machines."""

    name = "?"

    def create(self) -> Any:
        raise NotImplementedError

    def step(self, state: Any, value: Value) -> Any:
        raise NotImplementedError

    def final(self, state: Any) -> Value:
        raise NotImplementedError


class CountAgg(Aggregate):
    name = "count"

    def __init__(self, star: bool):
        self.star = star

    def create(self):
        return 0

    def step(self, state, value):
        if self.star or value is not None:
            return state + 1
        return state

    def final(self, state):
        return state


class SumAgg(Aggregate):
    name = "sum"

    def create(self):
        return None

    def step(self, state, value):
        if value is None:
            return state
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_("sum expects numbers")
        return value if state is None else state + value

    def final(self, state):
        return state


class AvgAgg(Aggregate):
    name = "avg"

    def create(self):
        # The running total starts as exact int 0, not float 0.0: integer
        # input then accumulates losslessly (Python bigints), like
        # PostgreSQL's numeric avg(int).  Seeding with a float made the
        # whole sum float, so avg over large ints depended on row order —
        # avg of {7, -2^63, 2^63} came out 0.0 or 7/3 depending on the
        # access path (found by differential fuzzing, seed 2001273).
        return (0, 0)

    def step(self, state, value):
        if value is None:
            return state
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_("avg expects numbers")
        count, total = state
        return (count + 1, total + value)

    def final(self, state):
        count, total = state
        return None if count == 0 else total / count


class MinMaxAgg(Aggregate):
    def __init__(self, want_max: bool):
        self.want_max = want_max
        self.name = "max" if want_max else "min"

    def create(self):
        return None

    def step(self, state, value):
        if value is None:
            return state
        if state is None:
            return value
        c = compare(value, state)
        if c is None:
            return state
        if (c > 0) == self.want_max and c != 0:
            return value
        return state

    def final(self, state):
        return state


class BoolAgg(Aggregate):
    def __init__(self, is_and: bool):
        self.is_and = is_and
        self.name = "bool_and" if is_and else "bool_or"

    def create(self):
        return None

    def step(self, state, value):
        if value is None:
            return state
        if not isinstance(value, bool):
            raise TypeError_(f"{self.name} expects booleans")
        if state is None:
            return value
        return (state and value) if self.is_and else (state or value)

    def final(self, state):
        return state


class ArrayAgg(Aggregate):
    name = "array_agg"

    def create(self):
        return []

    def step(self, state, value):
        state.append(value)
        return state

    def final(self, state):
        return list(state) if state else None


class StringAgg(Aggregate):
    """string_agg(value, sep) — the separator is bound at construction."""

    name = "string_agg"

    def __init__(self, separator: str = ""):
        self.separator = separator

    def create(self):
        return None

    def step(self, state, value):
        if value is None:
            return state
        if state is None:
            return str(value)
        return state + self.separator + str(value)

    def final(self, state):
        return state


AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max", "bool_and", "bool_or",
                   "every", "array_agg", "string_agg"}


def make_aggregate(name: str, star: bool = False, separator: str = "") -> Aggregate:
    """Instantiate the aggregate *name* (already validated to be aggregate)."""
    lowered = name.lower()
    if lowered == "count":
        return CountAgg(star)
    if lowered == "sum":
        return SumAgg()
    if lowered == "avg":
        return AvgAgg()
    if lowered == "min":
        return MinMaxAgg(want_max=False)
    if lowered == "max":
        return MinMaxAgg(want_max=True)
    if lowered in ("bool_and", "every"):
        return BoolAgg(is_and=True)
    if lowered == "bool_or":
        return BoolAgg(is_and=False)
    if lowered == "array_agg":
        return ArrayAgg()
    if lowered == "string_agg":
        return StringAgg(separator)
    raise ExecutionError(f"unknown aggregate {name!r}")


#: Pure window functions (not aggregates evaluated over frames).
WINDOW_FUNCTION_NAMES = {"row_number", "rank", "dense_rank", "lag", "lead",
                         "first_value", "last_value", "nth_value", "ntile"}


def is_aggregate_name(name: str) -> bool:
    return name.lower() in AGGREGATE_NAMES


def is_window_function_name(name: str) -> bool:
    return name.lower() in WINDOW_FUNCTION_NAMES
