"""Recursive-descent parser for the engine's SQL dialect.

The grammar covers the SQL surface the paper's pipeline needs — and then
some:

* SELECT / FROM / WHERE / GROUP BY / HAVING / WINDOW / ORDER BY / LIMIT /
  OFFSET, DISTINCT, set operations (UNION [ALL], INTERSECT, EXCEPT),
* ``WITH [RECURSIVE | ITERATE]`` common table expressions,
* joins: comma, CROSS/INNER/LEFT [OUTER] JOIN, ``LEFT JOIN LATERAL ... ON``,
* window functions with named windows, frame clauses, and
  ``EXCLUDE CURRENT ROW`` (the paper's Q2 uses all of these),
* scalar subqueries, EXISTS, IN, BETWEEN, LIKE/ILIKE, IS [NOT] NULL/TRUE,
* CASE (simple and searched), CAST and ``::``, ROW(...), ARRAY[...],
  subscripting, composite field access,
* DDL/DML: CREATE TABLE / TYPE / FUNCTION, INSERT, UPDATE, DELETE, DROP.

Entry points: :func:`parse_statement`, :func:`parse_select`,
:func:`parse_expression`, :func:`parse_script`.
"""

from __future__ import annotations

from . import ast as A
from .errors import ParseError
from .lexer import EOF, IDENT, NUMBER, OP, PARAM, QIDENT, STRING, Token, TokenStream

# Keywords that terminate an expression / cannot start an alias.
_CLAUSE_KEYWORDS = {
    "from", "where", "group", "having", "order", "limit", "offset", "union",
    "intersect", "except", "window", "on", "join", "inner", "left", "right",
    "full", "cross", "lateral", "as", "when", "then", "else", "end", "and",
    "or", "not", "in", "between", "like", "ilike", "is", "asc", "desc",
    "nulls", "using", "returning", "loop", "do", "values", "set", "into",
    "partition", "rows", "range", "groups", "exclude", "over", "filter",
    "by", "all", "distinct", "case", "cast", "exists", "array", "row",
    "reverse", "to", "for", "while", "if", "elsif", "return",
}

_TYPE_KEYWORDS_TWO_WORDS = {("double", "precision"), ("character", "varying")}


class SqlParser:
    """Stateful wrapper pairing a :class:`TokenStream` with grammar rules."""

    def __init__(self, stream: TokenStream):
        self.ts = stream

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_statement(self) -> A.Statement:
        ts = self.ts
        if ts.at_keyword("select", "with", "values") or ts.at_op("("):
            return self.parse_select()
        if ts.at_keyword("create"):
            return self._parse_create()
        if ts.at_keyword("insert"):
            return self._parse_insert()
        if ts.at_keyword("update"):
            return self._parse_update()
        if ts.at_keyword("delete"):
            return self._parse_delete()
        if ts.at_keyword("drop"):
            return self._parse_drop()
        if ts.at_keyword("prepare"):
            return self._parse_prepare()
        if ts.at_keyword("execute"):
            return self._parse_execute()
        if ts.at_keyword("deallocate"):
            return self._parse_deallocate()
        if ts.at_keyword("set"):
            return self._parse_set()
        if ts.at_keyword("show"):
            return self._parse_show()
        if ts.at_keyword("reset"):
            return self._parse_reset()
        if ts.at_keyword("explain"):
            ts.advance()
            return A.ExplainStmt(self.parse_statement())
        if ts.at_keyword("begin", "start"):
            return self._parse_begin()
        if ts.at_keyword("commit", "end"):
            ts.advance()
            self._accept_txn_noise()
            return A.CommitStmt()
        if ts.at_keyword("rollback", "abort"):
            return self._parse_rollback()
        if ts.at_keyword("savepoint"):
            ts.advance()
            return A.SavepointStmt(ts.expect_ident("savepoint name"))
        if ts.at_keyword("release"):
            ts.advance()
            ts.accept_keyword("savepoint")
            return A.ReleaseStmt(ts.expect_ident("savepoint name"))
        if ts.at_keyword("checkpoint"):
            ts.advance()
            return A.CheckpointStmt()
        if ts.at_keyword("check"):
            ts.advance()
            ts.expect_keyword("function")
            if ts.accept_keyword("all"):
                return A.CheckFunctionStmt(None)
            return A.CheckFunctionStmt(ts.expect_ident("function name"))
        token = ts.peek()
        raise ParseError(f"unexpected start of statement: {token}",
                         token.line, token.column)

    # ------------------------------------------------------------------
    # Transaction control
    # ------------------------------------------------------------------

    def _accept_txn_noise(self) -> None:
        """Swallow the optional ``WORK`` / ``TRANSACTION`` keyword."""
        self.ts.accept_keyword("work") or self.ts.accept_keyword("transaction")

    def _parse_begin(self) -> A.BeginStmt:
        ts = self.ts
        if ts.accept_keyword("start"):
            ts.expect_keyword("transaction")
        else:
            ts.expect_keyword("begin")
            self._accept_txn_noise()
        return A.BeginStmt()

    def _parse_rollback(self) -> A.RollbackStmt:
        ts = self.ts
        ts.advance()  # ROLLBACK or ABORT
        self._accept_txn_noise()
        savepoint = None
        if ts.accept_keyword("to"):
            ts.accept_keyword("savepoint")
            savepoint = ts.expect_ident("savepoint name")
        return A.RollbackStmt(savepoint)

    def parse_script(self) -> list[A.Statement]:
        """Parse a ``;``-separated sequence of statements."""
        statements = []
        while True:
            while self.ts.accept_op(";"):
                pass
            if self.ts.at_end():
                break
            statements.append(self.parse_statement())
        return statements

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def parse_select(self) -> A.SelectStmt:
        with_clause = self._parse_with_clause()
        body = self._parse_set_expr()
        order_by: list[A.SortItem] = []
        limit = offset = None
        if self.ts.accept_keyword("order"):
            self.ts.expect_keyword("by")
            order_by = self._parse_sort_items()
        if self.ts.accept_keyword("limit"):
            if not self.ts.accept_keyword("all"):
                limit = self.parse_expression()
        if self.ts.accept_keyword("offset"):
            offset = self.parse_expression()
        return A.SelectStmt(with_clause, body, order_by, limit, offset)

    def _parse_with_clause(self) -> A.WithClause | None:
        if not self.ts.accept_keyword("with"):
            return None
        recursive = bool(self.ts.accept_keyword("recursive"))
        iterate = False
        if not recursive and self.ts.accept_keyword("iterate"):
            recursive = True
            iterate = True
        ctes = [self._parse_cte()]
        while self.ts.accept_op(","):
            ctes.append(self._parse_cte())
        return A.WithClause(recursive, ctes, iterate)

    def _parse_cte(self) -> A.CommonTableExpr:
        name = self.ts.expect_ident("CTE name")
        column_names = None
        if self.ts.at_op("("):
            self.ts.advance()
            column_names = [self.ts.expect_ident("column name")]
            while self.ts.accept_op(","):
                column_names.append(self.ts.expect_ident("column name"))
            self.ts.expect_op(")")
        self.ts.expect_keyword("as")
        self.ts.expect_op("(")
        query = self.parse_select()
        self.ts.expect_op(")")
        return A.CommonTableExpr(name, column_names, query)

    def _parse_set_expr(self):
        left = self._parse_set_primary()
        while True:
            if self.ts.at_keyword("union"):
                self.ts.advance()
                op = "union_all" if self.ts.accept_keyword("all") else "union"
            elif self.ts.at_keyword("intersect"):
                self.ts.advance()
                op = "intersect"
            elif self.ts.at_keyword("except"):
                self.ts.advance()
                op = "except"
            else:
                return left
            right = self._parse_set_primary()
            left = A.SetOp(op, left, right)

    def _parse_set_primary(self):
        if self.ts.at_op("("):
            self.ts.advance()
            inner = self.parse_select()
            self.ts.expect_op(")")
            # A parenthesised SELECT in body position: fold trivial wrappers.
            if not inner.order_by and inner.limit is None and inner.offset is None \
                    and inner.with_clause is None:
                return inner.body
            # Keep richer inner queries intact by wrapping as a subquery body.
            return A.SelectCore(items=[A.Star(None)],
                                from_clause=A.SubqueryRef(inner, alias="_paren"))
        if self.ts.at_keyword("values"):
            return self._parse_values()
        return self._parse_select_core()

    def _parse_values(self) -> A.ValuesClause:
        self.ts.expect_keyword("values")
        rows = [self._parse_values_row()]
        while self.ts.accept_op(","):
            rows.append(self._parse_values_row())
        return A.ValuesClause(rows)

    def _parse_values_row(self) -> list[A.Expr]:
        self.ts.expect_op("(")
        row = [self.parse_expression()]
        while self.ts.accept_op(","):
            row.append(self.parse_expression())
        self.ts.expect_op(")")
        return row

    def _parse_select_core(self) -> A.SelectCore:
        self.ts.expect_keyword("select")
        return self._parse_select_core_after_keyword()

    def _parse_select_core_after_keyword(self) -> A.SelectCore:
        """Parse a SELECT core with the SELECT keyword already consumed
        (also used by PL/pgSQL's PERFORM, which has SELECT-list syntax)."""
        distinct = False
        if self.ts.accept_keyword("distinct"):
            distinct = True
        elif self.ts.accept_keyword("all"):
            pass
        items = [self._parse_select_item()]
        while self.ts.accept_op(","):
            items.append(self._parse_select_item())
        from_clause = None
        if self.ts.accept_keyword("from"):
            from_clause = self._parse_table_expr()
        where = None
        if self.ts.accept_keyword("where"):
            where = self.parse_expression()
        group_by: list[A.Expr] = []
        if self.ts.accept_keyword("group"):
            self.ts.expect_keyword("by")
            group_by.append(self.parse_expression())
            while self.ts.accept_op(","):
                group_by.append(self.parse_expression())
        having = None
        if self.ts.accept_keyword("having"):
            having = self.parse_expression()
        windows: dict[str, A.WindowSpec] = {}
        if self.ts.accept_keyword("window"):
            while True:
                name = self.ts.expect_ident("window name")
                self.ts.expect_keyword("as")
                self.ts.expect_op("(")
                windows[name] = self._parse_window_spec()
                self.ts.expect_op(")")
                if not self.ts.accept_op(","):
                    break
        return A.SelectCore(items, from_clause, where, group_by, having,
                            distinct, windows)

    def _parse_select_item(self):
        ts = self.ts
        if ts.at_op("*"):
            ts.advance()
            return A.Star(None)
        # Look for "ident(.ident)*.*" which is a qualified star.
        mark = ts.save()
        if ts.peek().type in (IDENT, QIDENT):
            parts = [ts.advance().value]
            while ts.at_op(".") and ts.peek(1).type in (IDENT, QIDENT, OP):
                if ts.peek(1).type == OP and ts.peek(1).value == "*":
                    ts.advance()  # '.'
                    ts.advance()  # '*'
                    return A.Star(str(parts[-1]))
                if ts.peek(1).type in (IDENT, QIDENT):
                    ts.advance()
                    parts.append(ts.advance().value)
                else:
                    break
            ts.restore(mark)
        expr = self.parse_expression()
        alias = None
        if ts.accept_keyword("as"):
            alias = ts.expect_ident("column alias")
        elif ts.peek().type == QIDENT or (
                ts.peek().type == IDENT and ts.peek().value not in _CLAUSE_KEYWORDS):
            alias = ts.expect_ident("column alias")
        return A.SelectItem(expr, alias)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _parse_table_expr(self) -> A.TableRef:
        left = self._parse_table_primary()
        while True:
            ts = self.ts
            if ts.accept_op(","):
                right = self._parse_table_primary()
                left = A.Join("cross", left, right)
                continue
            if ts.at_keyword("cross"):
                ts.advance()
                ts.expect_keyword("join")
                right = self._parse_table_primary()
                left = A.Join("cross", left, right)
                continue
            kind = None
            if ts.at_keyword("join") or ts.at_keyword("inner"):
                if ts.accept_keyword("inner"):
                    pass
                ts.expect_keyword("join")
                kind = "inner"
            elif ts.at_keyword("left"):
                ts.advance()
                ts.accept_keyword("outer")
                ts.expect_keyword("join")
                kind = "left"
            else:
                return left
            right = self._parse_table_primary()
            condition = None
            if ts.accept_keyword("on"):
                condition = self.parse_expression()
            left = A.Join(kind, left, right, condition)

    def _parse_table_primary(self) -> A.TableRef:
        ts = self.ts
        lateral = bool(ts.accept_keyword("lateral"))
        if ts.at_op("("):
            ts.advance()
            if ts.at_keyword("select", "with", "values") or ts.at_op("("):
                query = self.parse_select()
                ts.expect_op(")")
                alias, column_aliases = self._parse_table_alias(required=False)
                return A.SubqueryRef(query, alias or "_anon", column_aliases, lateral)
            # Parenthesised join tree.
            inner = self._parse_table_expr()
            ts.expect_op(")")
            return inner
        name = ts.expect_ident("table name")
        alias, column_aliases = self._parse_table_alias(required=False)
        if lateral:
            token = ts.peek()
            raise ParseError("LATERAL requires a subquery", token.line, token.column)
        return A.TableName(name, alias, column_aliases)

    def _parse_table_alias(self, required: bool):
        ts = self.ts
        alias = None
        if ts.accept_keyword("as"):
            alias = ts.expect_ident("table alias")
        elif ts.peek().type == QIDENT or (
                ts.peek().type == IDENT and ts.peek().value not in _CLAUSE_KEYWORDS):
            alias = ts.expect_ident("table alias")
        elif required:
            token = ts.peek()
            raise ParseError("subquery in FROM must have an alias",
                             token.line, token.column)
        column_aliases = None
        if alias is not None and ts.at_op("("):
            ts.advance()
            column_aliases = [ts.expect_ident("column alias")]
            while ts.accept_op(","):
                column_aliases.append(ts.expect_ident("column alias"))
            ts.expect_op(")")
        return alias, column_aliases

    # ------------------------------------------------------------------
    # Window specifications
    # ------------------------------------------------------------------

    def _parse_window_spec(self) -> A.WindowSpec:
        ts = self.ts
        spec = A.WindowSpec()
        # Optional base window name (must not be PARTITION/ORDER/frame word).
        if ts.peek().type == IDENT and ts.peek().value not in (
                "partition", "order", "rows", "range", "groups") \
                and not ts.at_op(")"):
            spec.ref_name = ts.expect_ident("window name")
        if ts.accept_keyword("partition"):
            ts.expect_keyword("by")
            spec.partition_by.append(self.parse_expression())
            while ts.accept_op(","):
                spec.partition_by.append(self.parse_expression())
        if ts.accept_keyword("order"):
            ts.expect_keyword("by")
            spec.order_by = self._parse_sort_items()
        if ts.at_keyword("rows", "range", "groups"):
            spec.frame = self._parse_frame_spec()
        return spec

    def _parse_frame_spec(self) -> A.FrameSpec:
        ts = self.ts
        mode = ts.advance().value  # rows | range | groups
        if ts.accept_keyword("between"):
            start = self._parse_frame_bound()
            ts.expect_keyword("and")
            end = self._parse_frame_bound()
        else:
            start = self._parse_frame_bound()
            end = A.FrameBound("current")
        exclusion = None
        if ts.accept_keyword("exclude"):
            if ts.accept_keyword("current"):
                ts.expect_keyword("row")
                exclusion = "current row"
            elif ts.accept_keyword("ties"):
                exclusion = "ties"
            elif ts.accept_keyword("group"):
                exclusion = "group"
            elif ts.accept_keyword("no"):
                ts.expect_keyword("others")
                exclusion = None
            else:
                token = ts.peek()
                raise ParseError(f"bad EXCLUDE clause at {token}",
                                 token.line, token.column)
        return A.FrameSpec(str(mode), start, end, exclusion)

    def _parse_frame_bound(self) -> A.FrameBound:
        ts = self.ts
        if ts.accept_keyword("unbounded"):
            if ts.accept_keyword("preceding"):
                return A.FrameBound("unbounded_preceding")
            ts.expect_keyword("following")
            return A.FrameBound("unbounded_following")
        if ts.accept_keyword("current"):
            ts.expect_keyword("row")
            return A.FrameBound("current")
        offset = self.parse_expression()
        if ts.accept_keyword("preceding"):
            return A.FrameBound("preceding", offset)
        ts.expect_keyword("following")
        return A.FrameBound("following", offset)

    def _parse_sort_items(self) -> list[A.SortItem]:
        items = [self._parse_sort_item()]
        while self.ts.accept_op(","):
            items.append(self._parse_sort_item())
        return items

    def _parse_sort_item(self) -> A.SortItem:
        expr = self.parse_expression()
        descending = False
        if self.ts.accept_keyword("asc"):
            pass
        elif self.ts.accept_keyword("desc"):
            descending = True
        nulls_first = None
        if self.ts.accept_keyword("nulls"):
            if self.ts.accept_keyword("first"):
                nulls_first = True
            else:
                self.ts.expect_keyword("last")
                nulls_first = False
        return A.SortItem(expr, descending, nulls_first)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self.ts.accept_keyword("or"):
            left = A.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_not()
        while self.ts.accept_keyword("and"):
            left = A.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> A.Expr:
        if self.ts.accept_keyword("not"):
            return A.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> A.Expr:
        left = self._parse_additive()
        while True:
            ts = self.ts
            if ts.at_op("=", "<>", "!=", "<", "<=", ">", ">="):
                op = str(ts.advance().value)
                if op == "!=":
                    op = "<>"
                right = self._parse_additive()
                left = A.BinaryOp(op, left, right)
                continue
            if ts.at_keyword("is"):
                ts.advance()
                negated = bool(ts.accept_keyword("not"))
                if ts.accept_keyword("null"):
                    left = A.IsNull(left, negated)
                elif ts.accept_keyword("true"):
                    left = A.IsBool(left, True, negated)
                elif ts.accept_keyword("false"):
                    left = A.IsBool(left, False, negated)
                elif ts.accept_keyword("distinct"):
                    ts.expect_keyword("from")
                    right = self._parse_additive()
                    left = _is_distinct(left, right, negated)
                else:
                    token = ts.peek()
                    raise ParseError(f"bad IS expression at {token}",
                                     token.line, token.column)
                continue
            negated = False
            mark = ts.save()
            if ts.at_keyword("not"):
                ts.advance()
                negated = True
            if ts.accept_keyword("between"):
                low = self._parse_additive()
                ts.expect_keyword("and")
                high = self._parse_additive()
                left = A.Between(left, low, high, negated)
                continue
            if ts.accept_keyword("in"):
                left = self._parse_in_tail(left, negated)
                continue
            if ts.at_keyword("like", "ilike"):
                ci = ts.advance().value == "ilike"
                pattern = self._parse_additive()
                left = A.Like(left, pattern, negated, bool(ci))
                continue
            if negated:
                ts.restore(mark)
            return left

    def _parse_in_tail(self, operand: A.Expr, negated: bool) -> A.Expr:
        ts = self.ts
        ts.expect_op("(")
        if ts.at_keyword("select", "with", "values"):
            query = self.parse_select()
            ts.expect_op(")")
            return A.InSubquery(operand, query, negated)
        items = [self.parse_expression()]
        while ts.accept_op(","):
            items.append(self.parse_expression())
        ts.expect_op(")")
        return A.InList(operand, items, negated)

    def _parse_additive(self) -> A.Expr:
        left = self._parse_multiplicative()
        while self.ts.at_op("+", "-", "||"):
            op = str(self.ts.advance().value)
            left = A.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> A.Expr:
        left = self._parse_power()
        while self.ts.at_op("*", "/", "%"):
            op = str(self.ts.advance().value)
            left = A.BinaryOp(op, left, self._parse_power())
        return left

    def _parse_power(self) -> A.Expr:
        # PostgreSQL precedence: ^ binds tighter than * / % but looser than
        # unary minus (-2 ^ 2 = 4), and associates left (2 ^ 3 ^ 3 = 512).
        left = self._parse_unary()
        while self.ts.at_op("^"):
            self.ts.advance()
            left = A.BinaryOp("^", left, self._parse_unary())
        return left

    def _parse_unary(self) -> A.Expr:
        if self.ts.at_op("-", "+"):
            op = str(self.ts.advance().value)
            operand = self._parse_unary()
            if op == "-" and isinstance(operand, A.Literal) and \
                    isinstance(operand.value, (int, float)) and \
                    not isinstance(operand.value, bool):
                return A.Literal(-operand.value)
            return A.UnaryOp(op, operand) if op == "-" else operand
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            ts = self.ts
            if ts.at_op("::"):
                ts.advance()
                expr = A.Cast(expr, self._parse_type_name())
                continue
            if ts.at_op("["):
                ts.advance()
                index = self.parse_expression()
                ts.expect_op("]")
                expr = A.ArrayIndex(expr, index)
                continue
            if ts.at_op(".") and ts.peek(1).type in (IDENT, QIDENT):
                ts.advance()
                name = ts.expect_ident("field name")
                if isinstance(expr, A.ColumnRef):
                    expr = A.ColumnRef(expr.parts + (name,))
                else:
                    expr = A.FieldAccess(expr, name)
                continue
            return expr

    def _parse_primary(self) -> A.Expr:
        ts = self.ts
        token = ts.peek()
        if token.type == NUMBER:
            ts.advance()
            return A.Literal(token.value)
        if token.type == STRING:
            ts.advance()
            return A.Literal(token.value)
        if token.type == PARAM:
            ts.advance()
            return A.Param(int(token.value))  # type: ignore[arg-type]
        if ts.accept_keyword("true"):
            return A.Literal(True)
        if ts.accept_keyword("false"):
            return A.Literal(False)
        if ts.accept_keyword("null"):
            return A.Literal(None)
        if ts.at_keyword("case"):
            return self._parse_case()
        if ts.at_keyword("cast"):
            ts.advance()
            ts.expect_op("(")
            operand = self.parse_expression()
            ts.expect_keyword("as")
            type_name = self._parse_type_name()
            ts.expect_op(")")
            return A.Cast(operand, type_name)
        if ts.at_keyword("exists"):
            ts.advance()
            ts.expect_op("(")
            query = self.parse_select()
            ts.expect_op(")")
            return A.Exists(query)
        if ts.at_keyword("array") and ts.peek(1).type == OP and ts.peek(1).value == "[":
            ts.advance()
            ts.advance()
            items = []
            if not ts.at_op("]"):
                items.append(self.parse_expression())
                while ts.accept_op(","):
                    items.append(self.parse_expression())
            ts.expect_op("]")
            return A.ArrayExpr(items)
        if ts.at_keyword("row") and ts.peek(1).type == OP and ts.peek(1).value == "(":
            ts.advance()
            ts.advance()
            items = []
            if not ts.at_op(")"):
                items.append(self.parse_expression())
                while ts.accept_op(","):
                    items.append(self.parse_expression())
            ts.expect_op(")")
            return A.RowExpr(items)
        if ts.at_op("("):
            ts.advance()
            if ts.at_keyword("select", "with", "values"):
                query = self.parse_select()
                ts.expect_op(")")
                return A.ScalarSubquery(query)
            expr = self.parse_expression()
            if ts.at_op(","):
                items = [expr]
                while ts.accept_op(","):
                    items.append(self.parse_expression())
                ts.expect_op(")")
                return A.RowExpr(items)
            ts.expect_op(")")
            return expr
        if token.type in (IDENT, QIDENT):
            # Function call?
            if ts.peek(1).type == OP and ts.peek(1).value == "(":
                return self._parse_func_call()
            name = ts.expect_ident()
            return A.ColumnRef((name,))
        raise ParseError(f"unexpected token in expression: {token}",
                         token.line, token.column)

    def _parse_case(self) -> A.CaseExpr:
        ts = self.ts
        ts.expect_keyword("case")
        operand = None
        if not ts.at_keyword("when"):
            operand = self.parse_expression()
        whens: list[tuple[A.Expr, A.Expr]] = []
        while ts.accept_keyword("when"):
            cond = self.parse_expression()
            ts.expect_keyword("then")
            result = self.parse_expression()
            whens.append((cond, result))
        else_result = None
        if ts.accept_keyword("else"):
            else_result = self.parse_expression()
        ts.expect_keyword("end")
        if not whens:
            token = ts.peek()
            raise ParseError("CASE requires at least one WHEN",
                             token.line, token.column)
        return A.CaseExpr(operand, whens, else_result)

    def _parse_func_call(self) -> A.Expr:
        ts = self.ts
        name = ts.expect_ident("function name")
        ts.expect_op("(")
        star = False
        distinct = False
        args: list[A.Expr] = []
        if ts.at_op("*"):
            ts.advance()
            star = True
        elif not ts.at_op(")"):
            if ts.accept_keyword("distinct"):
                distinct = True
            args.append(self.parse_expression())
            while ts.accept_op(","):
                args.append(self.parse_expression())
        ts.expect_op(")")
        window: A.WindowSpec | str | None = None
        if ts.accept_keyword("over"):
            if ts.at_op("("):
                ts.advance()
                window = self._parse_window_spec()
                ts.expect_op(")")
            else:
                window = ts.expect_ident("window name")
        return A.FuncCall(name, args, star, distinct, window)

    def _parse_type_name(self) -> str:
        ts = self.ts
        first = ts.expect_ident("type name")
        if ts.peek().type == IDENT and (first, ts.peek().value) in _TYPE_KEYWORDS_TWO_WORDS:
            second = ts.expect_ident()
            name = f"{first} {second}"
        else:
            name = first
        # Swallow a parenthesised precision: varchar(10), numeric(8,2).
        if ts.at_op("("):
            ts.advance()
            while not ts.at_op(")"):
                ts.advance()
            ts.expect_op(")")
        # Array suffix: int[]
        if ts.at_op("[") and ts.peek(1).type == OP and ts.peek(1).value == "]":
            ts.advance()
            ts.advance()
            name = name + "[]"
        return name

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def _parse_create(self):
        ts = self.ts
        ts.expect_keyword("create")
        replace = False
        if ts.accept_keyword("or"):
            ts.expect_keyword("replace")
            replace = True
        if ts.accept_keyword("table"):
            if_not_exists = False
            if ts.accept_keyword("if"):
                ts.expect_keyword("not")
                ts.expect_keyword("exists")
                if_not_exists = True
            name = ts.expect_ident("table name")
            ts.expect_op("(")
            columns = [self._parse_column_def()]
            while ts.accept_op(","):
                columns.append(self._parse_column_def())
            ts.expect_op(")")
            return A.CreateTable(name, columns, if_not_exists)
        if ts.accept_keyword("type"):
            name = ts.expect_ident("type name")
            ts.expect_keyword("as")
            ts.expect_op("(")
            fields = [self._parse_column_def()]
            while ts.accept_op(","):
                fields.append(self._parse_column_def())
            ts.expect_op(")")
            return A.CreateType(name, fields)
        if ts.accept_keyword("function"):
            return self._parse_create_function(replace)
        if ts.accept_keyword("index"):
            if_not_exists = False
            if ts.accept_keyword("if"):
                ts.expect_keyword("not")
                ts.expect_keyword("exists")
                if_not_exists = True
            name = ts.expect_ident("index name")
            ts.expect_keyword("on")
            table = ts.expect_ident("table name")
            ts.expect_op("(")
            columns = [self._parse_indexed_column()]
            while ts.accept_op(","):
                columns.append(self._parse_indexed_column())
            ts.expect_op(")")
            return A.CreateIndex(name, table, columns, if_not_exists)
        token = ts.peek()
        raise ParseError(f"unsupported CREATE statement at {token}",
                         token.line, token.column)

    def _parse_indexed_column(self) -> A.IndexedColumn:
        name = self.ts.expect_ident("column name")
        descending = False
        if self.ts.accept_keyword("desc"):
            descending = True
        else:
            self.ts.accept_keyword("asc")
        return A.IndexedColumn(name, descending)

    def _parse_column_def(self) -> A.ColumnDef:
        name = self.ts.expect_ident("column name")
        type_name = self._parse_type_name()
        # Ignore simple column constraints.
        while self.ts.at_keyword("primary", "not", "unique", "default"):
            if self.ts.accept_keyword("primary"):
                self.ts.expect_keyword("key")
            elif self.ts.accept_keyword("not"):
                self.ts.expect_keyword("null")
            elif self.ts.accept_keyword("unique"):
                pass
            elif self.ts.accept_keyword("default"):
                self._parse_additive()
        return A.ColumnDef(name, type_name)

    def _parse_create_function(self, replace: bool) -> A.CreateFunction:
        ts = self.ts
        name = ts.expect_ident("function name")
        ts.expect_op("(")
        params: list[A.FunctionParam] = []
        if not ts.at_op(")"):
            params.append(self._parse_function_param())
            while ts.accept_op(","):
                params.append(self._parse_function_param())
        ts.expect_op(")")
        ts.expect_keyword("returns")
        return_type = self._parse_type_name()
        body: str | None = None
        language: str | None = None
        volatility: str | None = None
        while True:
            if ts.accept_keyword("as"):
                token = ts.peek()
                if token.type != STRING:
                    raise ParseError("function body must be a string literal",
                                     token.line, token.column)
                ts.advance()
                body = str(token.value)
            elif ts.accept_keyword("language"):
                language = ts.expect_ident("language name").lower()
            elif ts.accept_keyword("immutable"):
                volatility = "immutable"
            elif ts.accept_keyword("stable"):
                volatility = "stable"
            elif ts.accept_keyword("volatile"):
                volatility = "volatile"
            elif ts.at_keyword("strict"):
                ts.advance()
            else:
                break
        if body is None or language is None:
            token = ts.peek()
            raise ParseError("CREATE FUNCTION needs AS body and LANGUAGE",
                             token.line, token.column)
        return A.CreateFunction(name, params, return_type, language, body,
                                replace, volatility=volatility)

    def _parse_function_param(self) -> A.FunctionParam:
        name = self.ts.expect_ident("parameter name")
        type_name = self._parse_type_name()
        return A.FunctionParam(name, type_name)

    def _parse_insert(self) -> A.Insert:
        ts = self.ts
        ts.expect_keyword("insert")
        ts.expect_keyword("into")
        table = ts.expect_ident("table name")
        columns = None
        if ts.at_op("("):
            ts.advance()
            columns = [ts.expect_ident("column name")]
            while ts.accept_op(","):
                columns.append(ts.expect_ident("column name"))
            ts.expect_op(")")
        source = self.parse_select()
        return A.Insert(table, columns, source)

    def _parse_update(self) -> A.Update:
        ts = self.ts
        ts.expect_keyword("update")
        table = ts.expect_ident("table name")
        ts.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while ts.accept_op(","):
            assignments.append(self._parse_assignment())
        where = None
        if ts.accept_keyword("where"):
            where = self.parse_expression()
        return A.Update(table, assignments, where)

    def _parse_assignment(self) -> tuple[str, A.Expr]:
        name = self.ts.expect_ident("column name")
        self.ts.expect_op("=")
        return name, self.parse_expression()

    def _parse_delete(self) -> A.Delete:
        ts = self.ts
        ts.expect_keyword("delete")
        ts.expect_keyword("from")
        table = ts.expect_ident("table name")
        where = None
        if ts.accept_keyword("where"):
            where = self.parse_expression()
        return A.Delete(table, where)

    def _parse_drop(self):
        ts = self.ts
        ts.expect_keyword("drop")
        if ts.accept_keyword("table"):
            if_exists = self._parse_if_exists()
            return A.DropTable(ts.expect_ident("table name"), if_exists)
        if ts.accept_keyword("function"):
            if_exists = self._parse_if_exists()
            return A.DropFunction(ts.expect_ident("function name"), if_exists)
        if ts.accept_keyword("index"):
            if_exists = self._parse_if_exists()
            return A.DropIndex(ts.expect_ident("index name"), if_exists)
        token = ts.peek()
        raise ParseError(f"unsupported DROP at {token}", token.line, token.column)

    def _parse_if_exists(self) -> bool:
        if self.ts.accept_keyword("if"):
            self.ts.expect_keyword("exists")
            return True
        return False

    # ------------------------------------------------------------------
    # Session statements: PREPARE / EXECUTE / DEALLOCATE, SET / SHOW /
    # RESET, EXPLAIN
    # ------------------------------------------------------------------

    def _parse_prepare(self) -> A.PrepareStmt:
        ts = self.ts
        ts.expect_keyword("prepare")
        name = ts.expect_ident("prepared statement name")
        param_types = None
        if ts.at_op("("):
            ts.advance()
            param_types = [self._parse_type_name()]
            while ts.accept_op(","):
                param_types.append(self._parse_type_name())
            ts.expect_op(")")
        ts.expect_keyword("as")
        return A.PrepareStmt(name, param_types, self.parse_statement())

    def _parse_execute(self) -> A.ExecuteStmt:
        ts = self.ts
        ts.expect_keyword("execute")
        name = ts.expect_ident("prepared statement name")
        args: list[A.Expr] = []
        if ts.at_op("("):
            ts.advance()
            if not ts.at_op(")"):
                args.append(self.parse_expression())
                while ts.accept_op(","):
                    args.append(self.parse_expression())
            ts.expect_op(")")
        return A.ExecuteStmt(name, args)

    def _parse_deallocate(self) -> A.DeallocateStmt:
        ts = self.ts
        ts.expect_keyword("deallocate")
        ts.accept_keyword("prepare")
        if ts.accept_keyword("all"):
            return A.DeallocateStmt(None)
        return A.DeallocateStmt(ts.expect_ident("prepared statement name"))

    def _parse_set(self) -> A.SetStmt:
        ts = self.ts
        ts.expect_keyword("set")
        local = False
        # LOCAL / SESSION are modifiers only when another identifier (the
        # setting name) follows; `SET local = ...` would name a setting.
        if ts.at_keyword("local") and ts.peek(1).type in (IDENT, QIDENT):
            ts.advance()
            local = True
        elif ts.at_keyword("session") and ts.peek(1).type in (IDENT, QIDENT):
            ts.advance()
        name = ts.expect_ident("setting name")
        if not ts.accept_keyword("to"):
            ts.expect_op("=")
        if ts.accept_keyword("default"):
            return A.SetStmt(name, None, local)
        # A bare word (machine, on, off, ...) is a string value, PostgreSQL
        # style; anything else is an ordinary expression.
        token = ts.peek()
        if token.type in (IDENT, QIDENT) and not ts.at_keyword(
                "true", "false", "null", "case", "cast", "not"):
            after = ts.peek(1)
            if after.type == EOF or (after.type == OP and after.value == ";"):
                ts.advance()
                return A.SetStmt(name, A.Literal(str(token.value)), local)
        return A.SetStmt(name, self.parse_expression(), local)

    def _parse_show(self) -> A.ShowStmt:
        ts = self.ts
        ts.expect_keyword("show")
        if ts.accept_keyword("all"):
            return A.ShowStmt(None)
        return A.ShowStmt(ts.expect_ident("setting name"))

    def _parse_reset(self) -> A.ResetStmt:
        ts = self.ts
        ts.expect_keyword("reset")
        if ts.accept_keyword("all"):
            return A.ResetStmt(None)
        return A.ResetStmt(ts.expect_ident("setting name"))


def _is_distinct(left: A.Expr, right: A.Expr, negated: bool) -> A.Expr:
    """Desugar IS [NOT] DISTINCT FROM into null-safe equality."""
    both_null = A.BinaryOp("and", A.IsNull(left), A.IsNull(right))
    equal = A.BinaryOp("and",
                       A.BinaryOp("and", A.IsNull(left, True), A.IsNull(right, True)),
                       A.BinaryOp("=", left, right))
    not_distinct = A.BinaryOp("or", both_null, equal)
    return not_distinct if negated else A.UnaryOp("not", not_distinct)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def parse_statement(text: str) -> A.Statement:
    parser = SqlParser(TokenStream.from_text(text))
    statement = parser.parse_statement()
    parser.ts.accept_op(";")
    if not parser.ts.at_end():
        token = parser.ts.peek()
        raise ParseError(f"trailing input after statement: {token}",
                         token.line, token.column)
    return statement


def parse_select(text: str) -> A.SelectStmt:
    statement = parse_statement(text)
    if not isinstance(statement, A.SelectStmt):
        raise ParseError("expected a SELECT statement")
    return statement


def parse_expression(text: str) -> A.Expr:
    parser = SqlParser(TokenStream.from_text(text))
    expr = parser.parse_expression()
    if not parser.ts.at_end():
        token = parser.ts.peek()
        raise ParseError(f"trailing input after expression: {token}",
                         token.line, token.column)
    return expr


def parse_script(text: str) -> list[A.Statement]:
    return SqlParser(TokenStream.from_text(text)).parse_script()
