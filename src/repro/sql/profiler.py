"""Exclusive-time phase profiler reproducing the paper's cost taxonomy.

The paper attributes PL/SQL evaluation time to four buckets (Table 1):

* ``ExecutorStart`` — plan instantiation (copying the cached plan into a
  runtime structure, binding placeholders),
* ``ExecutorRun``   — productive query evaluation,
* ``ExecutorEnd``   — plan teardown / freeing memory contexts,
* ``Interp``        — PL/SQL statement interpretation proper.

Phases nest (the interpreter runs embedded queries, which run subplans);
:class:`Profiler` therefore keeps a phase *stack* and attributes wall-clock
time exclusively to the innermost active phase, so the buckets sum to total
measured time without double counting.

Counters track discrete events: ``Q->f`` context switches (SQL calling a
PL/SQL function), ``f->Q`` switches (the function evaluating an embedded
query), plan-cache hits and misses.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from contextlib import contextmanager

#: Phase names used throughout the engine.
PARSE = "Parse"
PLAN = "Plan"
EXEC_START = "ExecutorStart"
EXEC_RUN = "ExecutorRun"
EXEC_END = "ExecutorEnd"
INTERP = "Interp"

PHASES = (PARSE, PLAN, EXEC_START, EXEC_RUN, EXEC_END, INTERP)

#: Counter names.
SWITCH_Q_TO_F = "switch Q->f"
SWITCH_F_TO_Q = "switch f->Q"
PLAN_CACHE_HIT = "plan cache hit"
PLAN_CACHE_MISS = "plan cache miss"
PLAN_INSTANTIATIONS = "plan instantiations"
#: Hash-join activity: one "build" per hash table constructed (i.e. per
#: operator open/rescan), plus the number of rows hashed into build tables.
HASHJOIN_BUILDS = "hash join builds"
HASHJOIN_BUILD_ROWS = "hash join build rows"
#: Recursive-CTE activity (the compiled trampoline): one "iteration" per
#: evaluation of the recursive term, "working rows" summing the working-set
#: sizes those evaluations saw, and the rows a UNION (not ALL) recursion's
#: hash-based working-set dedup dropped.
TRAMPOLINE_ITERATIONS = "trampoline iterations"
TRAMPOLINE_WORKING_ROWS = "trampoline working rows"
RECURSION_DEDUP_DROPPED = "recursion dedup dropped rows"
#: Set-oriented compiled-UDF execution: one "batch" per trampoline launched
#: by the BatchedUdf operator, "rows" counting the calls it carried and
#: "distinct" the activations left after argument-vector dedup.
BATCHED_UDF_BATCHES = "batched udf batches"
BATCHED_UDF_ROWS = "batched udf rows"
BATCHED_UDF_DISTINCT = "batched udf distinct calls"
#: Ordered access paths: one "build" per sorted index constructed (lazily
#: by a scan, or eagerly by CREATE INDEX), one "scan" per IndexRangeScan
#: open (each correlated re-probe is one open), one TopN bump per bounded
#: heap evaluation ("input rows" counts what streamed through the heap
#: instead of a full sort), and one merge-join bump per operator open.
SORTED_INDEX_BUILDS = "sorted index builds"
INDEX_RANGE_SCANS = "index range scans"
TOPN_SCANS = "topn scans"
TOPN_INPUT_ROWS = "topn input rows"
MERGEJOIN_SCANS = "merge join scans"
#: Session surface: executions through a PreparedStatement handle (SQL
#: EXECUTE or the programmatic API), replans a stale handle paid after DDL
#: or a plan-affecting SET, declarative settings assignments (SET / RESET),
#: and statement plans dropped by the LRU bound on the plan cache.
PREPARED_EXECUTIONS = "prepared executions"
PREPARED_REPLANS = "prepared replans"
SETTINGS_ASSIGNMENTS = "settings assignments"
PLAN_CACHE_EVICTIONS = "plan cache evictions"
#: Differential fuzzing (repro.fuzz): generated cases checked, individual
#: statement executions across the oracle settings matrix, outcome pairs
#: compared, statements cross-checked against SQLite, discrepancies found,
#: and engine-vs-SQLite differences explained away by the known-dialect
#: classifier (integer width, NaN storage, ...).  Bumped on the harness's
#: own profiler, not the per-case scratch databases.
FUZZ_CASES = "fuzz cases"
FUZZ_EXECUTIONS = "fuzz oracle executions"
FUZZ_COMPARISONS = "fuzz oracle comparisons"
FUZZ_SQLITE_CHECKS = "fuzz sqlite cross-checks"
FUZZ_DISCREPANCIES = "fuzz discrepancies"
FUZZ_DIALECT_EXPLAINED = "fuzz dialect differences explained"
FUZZ_ANALYZER_CHECKS = "fuzz analyzer soundness checks"
#: Transactions & durability: explicit BEGIN blocks opened, write
#: transactions committed / rolled back (read-only transactions never
#: take an xid and are not counted), WAL records written (including the
#: per-commit marker), WAL records replayed on a durable open, and
#: full-table snapshot-visibility resolutions (cache misses — a warm
#: visible-rows cache serves repeat scans without re-checking).
TXN_BEGUN = "transactions begun"
TXN_COMMITTED = "transactions committed"
TXN_ROLLED_BACK = "transactions rolled back"
WAL_RECORDS = "wal records written"
WAL_REPLAYED = "wal records replayed"
SNAPSHOT_SCANS = "snapshot visibility scans"
#: Wire server (repro.server): connections accepted / rejected by the
#: admission gate / reaped by the idle timeout, Query messages executed,
#: queries answered with an ErrorResponse, and queries whose latency
#: crossed the slow-query threshold.  Bumped from executor worker
#: threads, hence the counter lock in :meth:`Profiler.bump`.
SERVER_CONNECTIONS = "server connections"
SERVER_REJECTED = "server connections rejected"
SERVER_IDLE_CLOSED = "server idle timeouts"
SERVER_QUERIES = "server queries"
SERVER_ERRORS = "server query errors"
SERVER_SLOW_QUERIES = "server slow queries"
#: Vectorized execution (executor/vector.py): one "batch" per column
#: batch the VectorScan stage produced (cancellation is polled once per
#: batch), "rows" summing the rows those batches carried before
#: filtering.  A statement that falls back to the row engine mid-flight
#: keeps the bumps of the batches it already produced.
VECTOR_BATCHES = "vector batches"
VECTOR_ROWS = "vector rows"
#: Resource governance: statements killed by the cooperative cancel token
#: (wire CancelRequest, statement_timeout, interpreter budget), WAL logs
#: compacted to a snapshot prefix (CHECKPOINT or the auto-checkpoint
#: threshold), and fault-point firings from the deterministic injection
#: registry (:mod:`repro.faults`).
QUERIES_CANCELED = "queries canceled"
WAL_CHECKPOINTS = "wal checkpoints"
FAULTS_INJECTED = "faults injected"


class Profiler:
    """Stack-based exclusive phase timer plus event counters.

    Thread-safety: phase timing (``push``/``pop``) manipulates a single
    stack and is only ever called from code that already holds the
    database's execution lock, so it needs no locking of its own.
    Counters are different — the wire server bumps ``SERVER_*`` counters
    from the event loop and from executor worker threads *outside* the
    execution lock, so :meth:`bump` takes a dedicated counter lock
    (``counts[k] += n`` is a read-modify-write, not atomic under
    free-threading or arbitrary bytecode interleavings).
    """

    __slots__ = ("enabled", "times", "counts", "_stack", "_counts_lock")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.times: dict[str, float] = defaultdict(float)
        self.counts: dict[str, int] = defaultdict(int)
        self._stack: list[list] = []  # [name, last_mark]
        self._counts_lock = threading.Lock()

    # -- timing --------------------------------------------------------

    def push(self, name: str) -> None:
        if not self.enabled:
            return
        now = time.perf_counter()
        if self._stack:
            top = self._stack[-1]
            self.times[top[0]] += now - top[1]
        self._stack.append([name, now])

    def pop(self) -> None:
        if not self.enabled:
            return
        now = time.perf_counter()
        top = self._stack.pop()
        self.times[top[0]] += now - top[1]
        if self._stack:
            self._stack[-1][1] = now

    @contextmanager
    def phase(self, name: str):
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # -- counters --------------------------------------------------------

    def bump(self, counter: str, amount: int = 1) -> None:
        if self.enabled:
            with self._counts_lock:
                self.counts[counter] += amount

    # -- reporting --------------------------------------------------------

    def reset(self) -> None:
        self.times.clear()
        self.counts.clear()
        self._stack.clear()

    def total_time(self) -> float:
        return sum(self.times.values())

    def percentages(self, phases=PHASES) -> dict[str, float]:
        """Share of total profiled time per phase, in percent."""
        total = self.total_time()
        if total <= 0:
            return {name: 0.0 for name in phases}
        return {name: 100.0 * self.times.get(name, 0.0) / total
                for name in phases}

    def report(self) -> str:
        lines = ["phase             time[s]    share"]
        total = self.total_time()
        for name in PHASES:
            seconds = self.times.get(name, 0.0)
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"{name:<16} {seconds:9.4f}  {share:6.2f}%")
        for counter in sorted(self.counts):
            lines.append(f"{counter:<28} {self.counts[counter]:>10}")
        return "\n".join(lines)
