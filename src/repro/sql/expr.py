"""Expression compilation and evaluation.

The planner compiles every scalar expression of a plan node into a Python
closure ``fn(ctx) -> Value`` at *plan* time (name resolution happens here,
once).  At *run* time the closure is applied to an :class:`EvalContext`
carrying the current input row(s); this is the engine's equivalent of
PostgreSQL's ``ExprState`` machinery.

Correlated and scalar subqueries compile into *subplans*.  A subplan is
instantiated lazily once per execution (charged to the first evaluation) and
*re-opened* on subsequent evaluations — the cheap "rescan" that lets a single
compiled ``WITH RECURSIVE`` plan evaluate the paper's embedded queries
``Q1..Q3`` thousands of times without per-evaluation ExecutorStart cost.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from . import ast as A
from .errors import (ExecutionError, NameResolutionError, PlanError,
                     TypeError_)
from .functions import (SCALAR_BUILTINS, is_aggregate_name,
                        is_window_function_name)
from .types import cast_value
from .values import (Row, Value, sql_and, sql_eq, sql_ge, sql_gt, sql_le,
                     sql_lt, sql_ne, sql_not, sql_or)

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Database
    from .planner import Plan, Planner


class RuntimeContext:
    """Per-execution runtime services: database handle and parameters.

    ``cancel`` snapshots the statement's cancellation token (see
    :mod:`repro.sql.cancel`) at instantiation time so executor hot loops
    can poll it with two attribute loads; outside any statement it falls
    back to a token nothing ever trips.
    """

    __slots__ = ("db", "params", "depth", "cancel")

    def __init__(self, db: "Database", params: Sequence[Value] = ()):
        self.db = db
        self.params = tuple(params)
        self.depth = 0
        cancel = getattr(db, "_active_cancel", None)
        if cancel is None:
            from .cancel import NEVER_CANCELED
            cancel = NEVER_CANCELED
        self.cancel = cancel

    @property
    def rng(self):
        return self.db.rng

    @property
    def catalog(self):
        return self.db.catalog


class EvalContext:
    """A row binding environment for one expression evaluation.

    ``rows`` holds one tuple per relation visible in the innermost scope;
    ``parent`` chains outward for correlated references; ``slots`` is the
    owning operator's per-execution subplan cache.
    """

    __slots__ = ("rt", "rows", "parent", "slots")

    def __init__(self, rt: RuntimeContext, rows: Sequence[tuple],
                 parent: Optional["EvalContext"] = None,
                 slots: Optional[list] = None):
        self.rt = rt
        self.rows = rows
        self.parent = parent
        self.slots = slots if slots is not None else []


class Relation:
    """Plan-time description of one FROM-clause relation."""

    __slots__ = ("alias", "columns")

    def __init__(self, alias: str, columns: Sequence[str]):
        self.alias = alias.lower()
        self.columns = [c.lower() for c in columns]

    def __repr__(self) -> str:
        return f"Relation({self.alias}, {self.columns})"


class Scope:
    """Plan-time name-resolution scope (one per SELECT nesting level).

    ``observer``, when set, is called with ``(rel_index, col_index)`` every
    time a name (from any nesting depth) resolves into *this* scope's
    relations — the planner's index-pushdown probe uses this to prove that
    a key expression never touches the scanned relation.
    """

    def __init__(self, relations: Sequence[Relation],
                 parent: Optional["Scope"] = None):
        self.relations = list(relations)
        self.parent = parent
        self.observer = None

    def child(self, relations: Sequence[Relation]) -> "Scope":
        return Scope(relations, parent=self)

    def resolve(self, parts: tuple[str, ...]):
        """Resolve a (possibly qualified) name to
        ``(level, rel_index, col_index, field_tail)``.

        ``level`` counts how many scopes outward the reference is; a nonzero
        level makes the expression *correlated*.
        """
        scope: Optional[Scope] = self
        level = 0
        first = parts[0].lower()
        while scope is not None:
            # 1. qualified: first part names a relation alias.
            if len(parts) >= 2:
                for rel_index, rel in enumerate(scope.relations):
                    if rel.alias == first:
                        column = parts[1].lower()
                        if column in rel.columns:
                            if scope.observer is not None:
                                scope.observer(rel_index,
                                               rel.columns.index(column))
                            return (level, rel_index,
                                    rel.columns.index(column), parts[2:])
                        raise NameResolutionError(
                            f"relation {first!r} has no column {parts[1]!r} "
                            f"(columns: {rel.columns})")
            # 2. bare column name, possibly with composite field tail.
            matches = [(rel_index, rel.columns.index(first))
                       for rel_index, rel in enumerate(scope.relations)
                       if first in rel.columns]
            if len(matches) == 1:
                rel_index, col_index = matches[0]
                if scope.observer is not None:
                    scope.observer(rel_index, col_index)
                return (level, rel_index, col_index, parts[1:])
            if len(matches) > 1:
                raise NameResolutionError(f"column reference {first!r} is ambiguous")
            scope = scope.parent
            level += 1
        raise NameResolutionError(f"column {'.'.join(parts)!r} does not exist")


CompiledExpr = Callable[[EvalContext], Value]


class ExprCompiler:
    """Compiles AST expressions to closures within one plan node's scope.

    After compiling all of a node's expressions, :attr:`slot_count` tells the
    node how many subplan slots its PlanState must allocate.
    """

    def __init__(self, scope: Scope, planner: Optional["Planner"] = None):
        self.scope = scope
        self.planner = planner
        self.slot_count = 0
        #: Subplans aligned with slot indices; the owning plan node's state
        #: eagerly instantiates these into its slot list (ExecutorStart).
        self.subplans: list = []

    # ------------------------------------------------------------------

    def compile(self, expr: A.Expr) -> CompiledExpr:
        method = getattr(self, "_compile_" + type(expr).__name__, None)
        if method is None:
            raise PlanError(f"cannot compile expression node {type(expr).__name__}")
        return method(expr)

    def compile_many(self, exprs: Sequence[A.Expr]) -> list[CompiledExpr]:
        return [self.compile(e) for e in exprs]

    def _alloc_slot(self) -> int:
        index = self.slot_count
        self.slot_count += 1
        return index

    # -- leaves -----------------------------------------------------------

    def _compile_Literal(self, expr: A.Literal) -> CompiledExpr:
        value = expr.value
        return lambda ctx: value

    def _compile_Param(self, expr: A.Param) -> CompiledExpr:
        index = expr.index - 1
        if index < 0:
            raise PlanError("parameters are numbered from $1")

        def run(ctx: EvalContext) -> Value:
            params = ctx.rt.params
            if index >= len(params):
                raise ExecutionError(f"no value supplied for parameter ${index + 1}")
            return params[index]

        return run

    def _compile_ColumnRef(self, expr: A.ColumnRef) -> CompiledExpr:
        level, rel_index, col_index, fields = self.scope.resolve(expr.parts)
        if not fields:
            if level == 0:
                return lambda ctx: ctx.rows[rel_index][col_index]

            def run_outer(ctx: EvalContext) -> Value:
                target = ctx
                for _ in range(level):
                    if target.parent is None:
                        raise ExecutionError(
                            f"missing outer context for {expr.display!r}")
                    target = target.parent
                return target.rows[rel_index][col_index]

            return run_outer

        field_tail = tuple(fields)

        def run_fields(ctx: EvalContext) -> Value:
            target = ctx
            for _ in range(level):
                target = target.parent  # type: ignore[assignment]
            value = target.rows[rel_index][col_index]
            for name in field_tail:
                if value is None:
                    return None
                if not isinstance(value, Row):
                    raise TypeError_(
                        f"cannot access field {name!r} of non-composite value")
                value = value.field(name)
            return value

        return run_fields

    # -- operators --------------------------------------------------------

    _COMPARE_FNS = {"=": sql_eq, "<>": sql_ne, "<": sql_lt, "<=": sql_le,
                    ">": sql_gt, ">=": sql_ge}

    def _compile_BinaryOp(self, expr: A.BinaryOp) -> CompiledExpr:
        op = expr.op
        if op == "and":
            left, right = self.compile(expr.left), self.compile(expr.right)

            def run_and(ctx: EvalContext):
                lhs = _as_bool(left(ctx))
                if lhs is False:
                    return False
                return sql_and(lhs, _as_bool(right(ctx)))

            return run_and
        if op == "or":
            left, right = self.compile(expr.left), self.compile(expr.right)

            def run_or(ctx: EvalContext):
                lhs = _as_bool(left(ctx))
                if lhs is True:
                    return True
                return sql_or(lhs, _as_bool(right(ctx)))

            return run_or
        left, right = self.compile(expr.left), self.compile(expr.right)
        if op in self._COMPARE_FNS:
            cmp_fn = self._COMPARE_FNS[op]
            return lambda ctx: cmp_fn(left(ctx), right(ctx))
        if op == "||":
            return lambda ctx: _concat(left(ctx), right(ctx))
        arith = _ARITH_FNS.get(op)
        if arith is None:
            raise PlanError(f"unknown binary operator {op!r}")
        fast = _INT_FAST_FNS.get(op)
        if fast is None:
            def run_arith(ctx: EvalContext):
                a = left(ctx)
                if a is None:
                    return None
                b = right(ctx)
                if b is None:
                    return None
                return arith(a, b)

            return run_arith

        def run_arith_fast(ctx: EvalContext):
            a = left(ctx)
            if a is None:
                return None
            b = right(ctx)
            if b is None:
                return None
            if type(a) is int and type(b) is int:
                # Exact-int fast path (bool is excluded by ``type() is``);
                # / and % keep their SQL division/sign semantics helpers.
                return fast(a, b)
            return arith(a, b)

        return run_arith_fast

    def _compile_UnaryOp(self, expr: A.UnaryOp) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.op == "not":
            return lambda ctx: sql_not(_as_bool(operand(ctx)))
        if expr.op == "-":
            def run_neg(ctx: EvalContext):
                value = operand(ctx)
                if value is None:
                    return None
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise TypeError_("unary minus expects a number")
                return -value
            return run_neg
        if expr.op == "+":
            return operand
        raise PlanError(f"unknown unary operator {expr.op!r}")

    def _compile_IsNull(self, expr: A.IsNull) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.negated:
            return lambda ctx: operand(ctx) is not None
        return lambda ctx: operand(ctx) is None

    def _compile_IsBool(self, expr: A.IsBool) -> CompiledExpr:
        operand = self.compile(expr.operand)
        wanted = expr.value
        negated = expr.negated

        def run(ctx: EvalContext):
            value = _as_bool(operand(ctx))
            result = value is wanted
            return (not result) if negated else result

        return run

    def _compile_Between(self, expr: A.Between) -> CompiledExpr:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def run(ctx: EvalContext):
            value = operand(ctx)
            result = sql_and(sql_ge(value, low(ctx)), sql_le(value, high(ctx)))
            return sql_not(result) if negated else result

        return run

    def _compile_InList(self, expr: A.InList) -> CompiledExpr:
        operand = self.compile(expr.operand)
        items = self.compile_many(expr.items)
        negated = expr.negated

        def run(ctx: EvalContext):
            value = operand(ctx)
            result: Optional[bool] = False
            for item in items:
                part = sql_eq(value, item(ctx))
                if part is True:
                    result = True
                    break
                if part is None:
                    result = None
            return sql_not(result) if negated else result

        return run

    def _compile_Like(self, expr: A.Like) -> CompiledExpr:
        operand = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)
        negated = expr.negated
        flags = re.IGNORECASE if expr.case_insensitive else 0
        cache: dict[str, re.Pattern] = {}

        def run(ctx: EvalContext):
            value = operand(ctx)
            pat = pattern(ctx)
            if value is None or pat is None:
                return None
            regex = cache.get(pat)
            if regex is None:
                regex = re.compile(_like_to_regex(pat), flags)
                if len(cache) < 64:
                    cache[pat] = regex
            result = regex.fullmatch(value) is not None
            return (not result) if negated else result

        return run

    def _compile_CaseExpr(self, expr: A.CaseExpr) -> CompiledExpr:
        whens = [(self.compile(c), self.compile(r)) for c, r in expr.whens]
        else_result = (self.compile(expr.else_result)
                       if expr.else_result is not None else None)
        if expr.operand is None:
            def run_searched(ctx: EvalContext):
                for cond, result in whens:
                    if _as_bool(cond(ctx)) is True:
                        return result(ctx)
                return else_result(ctx) if else_result is not None else None
            return run_searched

        operand = self.compile(expr.operand)

        def run_simple(ctx: EvalContext):
            value = operand(ctx)
            for cond, result in whens:
                if sql_eq(value, cond(ctx)) is True:
                    return result(ctx)
            return else_result(ctx) if else_result is not None else None

        return run_simple

    def _compile_Cast(self, expr: A.Cast) -> CompiledExpr:
        operand = self.compile(expr.operand)
        type_name = expr.type_name
        planner = self.planner

        def run(ctx: EvalContext):
            composite = ctx.rt.catalog.get_type(type_name) if planner is not None \
                else ctx.rt.catalog.get_type(type_name)
            return cast_value(operand(ctx), type_name, composite)

        return run

    def _compile_RowExpr(self, expr: A.RowExpr) -> CompiledExpr:
        items = self.compile_many(expr.items)
        type_name = expr.type_name

        def run(ctx: EvalContext):
            values = [item(ctx) for item in items]
            if type_name is not None:
                composite = ctx.rt.catalog.get_type(type_name)
                if composite is not None:
                    return composite.make_row(values)
            return Row(values, type_name=type_name)

        return run

    def _compile_ArrayExpr(self, expr: A.ArrayExpr) -> CompiledExpr:
        items = self.compile_many(expr.items)
        return lambda ctx: [item(ctx) for item in items]

    def _compile_ArrayIndex(self, expr: A.ArrayIndex) -> CompiledExpr:
        operand = self.compile(expr.operand)
        index = self.compile(expr.index)

        def run(ctx: EvalContext):
            arr = operand(ctx)
            i = index(ctx)
            if arr is None or i is None:
                return None
            if not isinstance(arr, list):
                raise TypeError_("cannot subscript a non-array value")
            if not isinstance(i, int) or isinstance(i, bool):
                raise TypeError_("array subscript must be an integer")
            if i < 1 or i > len(arr):
                return None
            return arr[i - 1]

        return run

    def _compile_FieldAccess(self, expr: A.FieldAccess) -> CompiledExpr:
        operand = self.compile(expr.operand)
        name = expr.fieldname

        def run(ctx: EvalContext):
            value = operand(ctx)
            if value is None:
                return None
            if not isinstance(value, Row):
                raise TypeError_(f"cannot access field {name!r} of "
                                 f"{type(value).__name__}")
            return value.field(name)

        return run

    # -- function calls -----------------------------------------------------

    def _compile_FuncCall(self, expr: A.FuncCall) -> CompiledExpr:
        name = expr.name.lower()
        if expr.window is not None:
            raise PlanError(f"window function {name}() not allowed here")
        if is_aggregate_name(name):
            raise PlanError(f"aggregate {name}() not allowed here")
        if name == "coalesce":
            items = self.compile_many(expr.args)

            def run_coalesce(ctx: EvalContext):
                for item in items:
                    value = item(ctx)
                    if value is not None:
                        return value
                return None

            return run_coalesce
        builtin = SCALAR_BUILTINS.get(name)
        if builtin is not None:
            args = self.compile_many(expr.args)
            return lambda ctx: builtin(ctx.rt, *[a(ctx) for a in args])
        if self.planner is not None:
            fdef = self.planner.catalog.get_function(name)
            if fdef is None:
                raise NameResolutionError(f"unknown function {name!r}")
            if len(expr.args) != fdef.arity:
                raise PlanError(
                    f"function {name}() takes {fdef.arity} arguments, "
                    f"got {len(expr.args)}")
            if fdef.kind == "compiled" and self.planner.inline_compiled:
                # The paper's finalization step: splice the compiled pure-SQL
                # query Qf into the call site so Q and Qf are planned as one.
                from .astutil import substitute_params_select
                inlined = substitute_params_select(fdef.query, list(expr.args))
                return self._compile_ScalarSubquery(A.ScalarSubquery(inlined))
        # User-defined function (SQL / PL/pgSQL / compiled-but-not-inlined):
        # every evaluation is a Q→f context switch through the engine.
        args = self.compile_many(expr.args)

        def run_udf(ctx: EvalContext):
            fdef = ctx.rt.catalog.get_function(name)
            if fdef is None:
                raise NameResolutionError(f"unknown function {name!r}")
            values = [a(ctx) for a in args]
            return ctx.rt.db.call_function(fdef, values)

        return run_udf

    # -- subqueries ----------------------------------------------------------

    def _plan_subquery(self, query: A.SelectStmt) -> "Plan":
        if self.planner is None:
            raise PlanError("subqueries are not allowed in this context")
        # Expression subqueries (EXISTS / IN / scalar) stop pulling rows
        # early, so everything planned beneath them must stay lazily
        # evaluated — the planner declines eager compiled-UDF batching
        # while this depth is nonzero.
        self.planner.expr_subquery_depth += 1
        try:
            return self.planner.plan_select(query, outer_scope=self.scope)
        finally:
            self.planner.expr_subquery_depth -= 1

    def _subplan_runner(self, query: A.SelectStmt):
        """Return ``run(ctx) -> PlanState`` fetching the pre-instantiated
        subplan from this node's slot array and (re)opening it for *ctx*."""
        plan = self._plan_subquery(query)
        slot = self._alloc_slot()
        self.subplans.append(plan)

        def run(ctx: EvalContext):
            try:
                state = ctx.slots[slot]
            except IndexError:
                raise ExecutionError(
                    "internal: subplan slot missing (operator did not "
                    "allocate expression slots)")
            state.open(ctx)
            return state

        return run

    def _compile_ScalarSubquery(self, expr: A.ScalarSubquery) -> CompiledExpr:
        runner = self._subplan_runner(expr.query)

        def run(ctx: EvalContext):
            state = runner(ctx)
            first = state.next()
            if first is None:
                return None
            if state.next() is not None:
                raise ExecutionError(
                    "more than one row returned by a subquery used as an expression")
            if len(first) == 1:
                return first[0]
            return Row(first)

        return run

    def _compile_Exists(self, expr: A.Exists) -> CompiledExpr:
        runner = self._subplan_runner(expr.subquery)

        def run(ctx: EvalContext):
            state = runner(ctx)
            return state.next() is not None

        return run

    def _compile_InSubquery(self, expr: A.InSubquery) -> CompiledExpr:
        operand = self.compile(expr.operand)
        runner = self._subplan_runner(expr.subquery)
        negated = expr.negated

        def run(ctx: EvalContext):
            value = operand(ctx)
            state = runner(ctx)
            result: Optional[bool] = False
            while True:
                row = state.next()
                if row is None:
                    break
                candidate = row[0] if len(row) == 1 else Row(row)
                part = sql_eq(value, candidate)
                if part is True:
                    result = True
                    break
                if part is None:
                    result = None
            return sql_not(result) if negated else result

        return run


# ---------------------------------------------------------------------------
# Value-level helpers
# ---------------------------------------------------------------------------


def _as_bool(value: Value) -> Optional[bool]:
    if value is None or isinstance(value, bool):
        return value
    raise TypeError_(f"expected boolean, got {type(value).__name__}")


def _check_number(value: Value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError_(f"expected number, got {type(value).__name__}")


def _add(a, b):
    _check_number(a), _check_number(b)
    return a + b


def _sub(a, b):
    _check_number(a), _check_number(b)
    return a - b


def _mul(a, b):
    _check_number(a), _check_number(b)
    return a * b


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("division by zero")
    # PostgreSQL integer division truncates toward zero.
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _int_mod(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("division by zero")
    # Sign follows the dividend (PostgreSQL semantics).
    remainder = abs(a) % abs(b)
    return remainder if a >= 0 else -remainder


def _div(a, b):
    _check_number(a), _check_number(b)
    if isinstance(a, int) and isinstance(b, int):
        return _int_div(a, b)
    if b == 0:
        raise ExecutionError("division by zero")
    return a / b


def _mod(a, b):
    _check_number(a), _check_number(b)
    if isinstance(a, int) and isinstance(b, int):
        return _int_mod(a, b)
    if b == 0:
        raise ExecutionError("division by zero")
    import math
    return math.fmod(a, b)


def _pow(a, b):
    import math

    _check_number(a), _check_number(b)
    # PostgreSQL ^ semantics: double-precision result, with the two error
    # cases numeric exponentiation rejects.  Infinite/NaN exponents skip the
    # integrality test and take IEEE semantics ((-2) ^ inf = inf).
    if a == 0 and b < 0:
        raise ExecutionError("zero raised to a negative power is undefined")
    if a < 0 and math.isfinite(b) and float(b) != int(b):
        raise ExecutionError("a negative number raised to a non-integer "
                             "power yields a complex result")
    try:
        return float(a) ** float(b)
    except OverflowError:
        raise ExecutionError("value out of range: overflow")


_ARITH_FNS = {"+": _add, "-": _sub, "*": _mul, "/": _div, "%": _mod,
              "^": _pow}

#: Exact-int shortcuts taken by ``run_arith`` (``^`` stays on the generic
#: path: SQL power always yields double precision).
_INT_FAST_FNS = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                 "*": lambda a, b: a * b, "/": _int_div, "%": _int_mod}


def _concat(a: Value, b: Value) -> Value:
    if a is None or b is None:
        return None
    if isinstance(a, list) and isinstance(b, list):
        return a + b
    if isinstance(a, list):
        return a + [b]
    if isinstance(b, list):
        return [a] + b

    def text(v):
        if isinstance(v, str):
            return v
        if isinstance(v, bool):
            return "true" if v else "false"
        if isinstance(v, (int, float)):
            return str(v)
        from .values import render_value
        return render_value(v)

    return text(a) + text(b)


def _like_to_regex(pattern: str) -> str:
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return "".join(out)
