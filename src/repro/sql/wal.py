"""Write-ahead log: fsync-on-commit durability and replay-on-open.

``Database(path=...)`` attaches a :class:`WalManager`.  Transactions
buffer their log records in memory (``Transaction.wal_buf``); nothing
touches the file until COMMIT, which appends every buffered record plus
a commit marker, flushes, and ``fsync``\\ s — so the log never contains a
half-transaction followed by its commit marker, and rollback is free
(the buffer is simply discarded).

Record format: one JSON object per line (a torn tail line from a crash
mid-write is detected and ignored during replay).

* ``{"t": "ins", "x": xid, "tb": table, "r": rid, "v": [values...]}``
* ``{"t": "del", "x": xid, "tb": table, "r": rid}``
* ``{"t": "ddl", "x": xid, "op": [opname, ...args]}``
* ``{"t": "commit", "x": xid}``

Row identity across the log is the per-table monotonic ``rid`` stamped
on every :class:`~repro.sql.txn.RowVersion` — an UPDATE logs a ``del``
of the old rid plus an ``ins`` of the new one.  Values are JSON with two
tagged containers (``{"R": [...]}`` for composite
:class:`~repro.sql.values.Row` values, ``{"L": [...]}`` for arrays);
everything else (NULL, bool, int, float including NaN/Infinity, text)
round-trips natively.

Replay (:meth:`WalManager.replay`) makes two passes: collect the xids
with a commit marker, then apply only their records in log order.  DDL
operations are applied structurally against the catalog; ``ins``/``del``
records fold into per-table ``rid -> row`` maps that bulk-load at the
end, so sorted and hash indexes — including ones a replayed
``CREATE INDEX`` declared — are rebuilt consistently by the ordinary
``insert_many`` maintenance path.

Checkpointing (:meth:`WalManager.checkpoint`) keeps replay O(live data):
it serializes the committed state — catalog DDL plus every visible row,
under the frozen pseudo-xid with one commit marker — into a temp file,
fsyncs it, and atomically renames it over the live log.  The snapshot is
an ordinary log prefix, so replay needs no special cases; a crash at any
step leaves either the complete old log or the complete new one (the
fault points ``wal.checkpoint.*`` let the recovery suite prove that).
Checkpoints run only while no write transaction is in flight — DDL and
row versions of an uncommitted transaction are already applied to the
in-memory catalog/heap, and a snapshot taken mid-flight would promote
them to committed.  The ``CHECKPOINT`` statement triggers one on demand;
``wal_checkpoint_interval`` auto-triggers after that many appended
records, deferring while transactions are open.  Compiled functions
registered programmatically (``register_compiled_function``) are not
logged or checkpointed — they live in Python objects, not SQL text — and
must be re-registered after a durable reopen.

Fault injection: the ``wal.append`` and ``wal.checkpoint.*`` points of
:data:`repro.faults.FAULTS` cover this module.  The legacy
``REPRO_WAL_FAULT=crash:N|torn:N`` environment hook still works — it is
mapped onto the ``wal.append`` point at open (crash: hard-exit right
after appending the N-th record; torn: write half of the N-th record
with no newline, then hard-exit).
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from ..faults import FAULTS, FaultInjectedError
from .profiler import WAL_CHECKPOINTS, WAL_RECORDS, WAL_REPLAYED
from .values import Row, Value

#: Pseudo-xid for checkpoint snapshot records: FROZEN_XID — replayed rows
#: bulk-load outside any transaction and freeze anyway, and no real
#: transaction ever takes xid 1, so its commit marker cannot collide.
CHECKPOINT_XID = 1


def encode_value(value: Value):
    """JSON-encodable form of one SQL value (tags Row and array)."""
    if isinstance(value, Row):
        encoded = {"R": [encode_value(v) for v in value.values]}
        if value.names is not None:
            encoded["n"] = list(value.names)
        if value.type_name is not None:
            encoded["tn"] = value.type_name
        return encoded
    if isinstance(value, list):
        return {"L": [encode_value(v) for v in value]}
    return value


def decode_value(value) -> Value:
    if isinstance(value, dict):
        if "R" in value:
            return Row(tuple(decode_value(v) for v in value["R"]),
                       names=value.get("n"), type_name=value.get("tn"))
        return [decode_value(v) for v in value["L"]]
    return value


def _dumps(record: dict) -> str:
    return json.dumps(record, separators=(",", ":"))


class WalManager:
    """Owns one log file: append path for commits, replay path for open."""

    def __init__(self, db, path: str):
        self.db = db
        self.path = path
        self.profiler = db.profiler
        fault = os.environ.get("REPRO_WAL_FAULT")
        if fault:
            kind, _, at = fault.partition(":")
            if kind in ("crash", "torn") and at.isdigit():
                # Legacy hook, kept for the recovery suite: mapped onto
                # the generalized fault registry's wal.append point.
                FAULTS.arm("wal.append", kind, int(at))
        #: Records appended since the last checkpoint (or since open,
        #: seeded with the replayed backlog so a long-lived log compacts
        #: on the first eligible commit after reopening).
        self._since_checkpoint = 0
        #: Set when an auto-checkpoint failed (the commit that triggered
        #: it still succeeded; the old log stays authoritative).
        self.last_checkpoint_error: Optional[Exception] = None
        tmp = path + ".ckpt"
        if os.path.exists(tmp):
            # A crash mid-checkpoint left a partial snapshot behind; the
            # live log is still authoritative.
            os.remove(tmp)
        if os.path.exists(path):
            replayed = self.replay()
            if replayed and self.profiler is not None:
                self.profiler.bump(WAL_REPLAYED, replayed)
            self._since_checkpoint = replayed
        self._fh = open(path, "a", encoding="utf-8")

    # -- record builders (storage calls these while buffering) ---------

    def insert_record(self, xid: int, table: str, rid: int, data) -> dict:
        return {"t": "ins", "x": xid, "tb": table, "r": rid,
                "v": [encode_value(v) for v in data]}

    def delete_record(self, xid: int, table: str, rid: int) -> dict:
        return {"t": "del", "x": xid, "tb": table, "r": rid}

    # -- commit path ---------------------------------------------------

    def commit(self, xid: int, records: list) -> None:
        """Append *records* plus the commit marker; flush and fsync.

        The commit marker is what makes the transaction durable: replay
        ignores any records whose xid never reached its marker.
        """
        for record in records:
            self._append(_dumps(record))
        self._append(_dumps({"t": "commit", "x": xid}))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if self.profiler is not None:
            self.profiler.bump(WAL_RECORDS, len(records) + 1)

    def _append(self, line: str) -> None:
        trigger = FAULTS.check("wal.append", self.profiler)
        if trigger is not None and trigger.kind == "torn":
            self._fh.write(line[:max(1, len(line) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os._exit(1)
        if trigger is not None and trigger.kind == "delay":
            time.sleep(trigger.delay_s)
        elif trigger is not None and trigger.kind == "error-once":
            raise FaultInjectedError("wal.append")
        self._fh.write(line + "\n")
        self._since_checkpoint += 1
        if trigger is not None and trigger.kind == "crash":
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os._exit(1)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- checkpointing -------------------------------------------------

    def snapshot_records(self) -> list[str]:
        """Serialize the committed state as an ordinary log prefix.

        DDL first (types before functions, tables before their rows and
        indexes), then every row version visible to a fresh snapshot
        (keeping its real rid, so records appended later keep naming the
        rows they touch), then one commit marker for the pseudo-xid.
        Caller must ensure no write transaction is in flight.
        """
        db = self.db
        catalog = db.catalog
        x = CHECKPOINT_XID
        lines: list[str] = []

        def ddl(op: list) -> None:
            lines.append(_dumps({"t": "ddl", "x": x, "op": op}))

        for ctype in catalog.composite_types.values():
            ddl(["create_type", ctype.name, list(ctype.field_names),
                 list(ctype.field_types)])
        for fdef in catalog.functions.values():
            if fdef.kind in ("sql", "plpgsql"):
                ddl(["create_function",
                     {"name": fdef.name, "kind": fdef.kind,
                      "params": list(fdef.param_names),
                      "types": list(fdef.param_types),
                      "ret": fdef.return_type, "body": fdef.body,
                      "volatility": fdef.declared_volatility}])
        snapshot = db.txnman.instant_snapshot()
        for table in catalog.tables.values():
            ddl(["create_table", table.name, list(table.column_names),
                 list(table.column_types)])
            for version in table._versions:
                if snapshot.visible(version):
                    lines.append(_dumps(self.insert_record(
                        x, table.name, version.rid, version.data)))
        for index_def in catalog.indexes.values():
            ddl(["create_index", index_def.name, index_def.table,
                 [[name, bool(desc)] for name, desc
                  in zip(index_def.column_names, index_def.descending)]])
        lines.append(_dumps({"t": "commit", "x": x}))
        return lines

    def checkpoint(self) -> int:
        """Compact the log to a snapshot prefix; returns records written.

        Crash-safe at every step: the snapshot goes to a temp file that
        is fsynced before an atomic rename replaces the live log, so a
        crash leaves either the old complete log (before the rename) or
        the new complete one (after) — never a mixture.  Must run under
        the execution lock with no write transaction in flight (the
        dispatch layer guarantees both).
        """
        profiler = self.profiler
        FAULTS.fire("wal.checkpoint.start", profiler)
        lines = self.snapshot_records()
        tmp = self.path + ".ckpt"
        with open(tmp, "w", encoding="utf-8") as fh:
            for line in lines:
                FAULTS.fire("wal.checkpoint.write", profiler)
                fh.write(line + "\n")
            FAULTS.fire("wal.checkpoint.fsync", profiler)
            fh.flush()
            os.fsync(fh.fileno())
        FAULTS.fire("wal.checkpoint.rename", profiler)
        # Everything appended so far must be on disk in the *old* log
        # before it stops being the recovery source.
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        try:
            os.rename(tmp, self.path)
            FAULTS.fire("wal.checkpoint.reopen", profiler)
        finally:
            # Reopen whichever file now lives at the path — the new log
            # after a successful rename, the old one if it failed — so
            # an injected error leaves the manager appendable.
            self._fh = open(self.path, "a", encoding="utf-8")
        self._since_checkpoint = 0
        if profiler is not None:
            profiler.bump(WAL_CHECKPOINTS)
        return len(lines)

    def maybe_checkpoint(self) -> bool:
        """Auto-checkpoint once the appended-record threshold is crossed.

        Runs only when nothing is in flight (no active write xids, no
        current statement transaction) — otherwise it stays pending and
        the next eligible commit retries.  A failing checkpoint never
        fails the commit that triggered it: the old log is still intact
        and authoritative, so the error is recorded and swallowed.
        """
        interval = getattr(self.db, "wal_checkpoint_interval", 0)
        if not interval or self._since_checkpoint < interval:
            return False
        txnman = self.db.txnman
        if txnman.active_xids or txnman.current is not None:
            return False
        try:
            self.checkpoint()
        except Exception as error:  # noqa: BLE001 — commit must survive
            self.last_checkpoint_error = error
            return False
        return True

    # -- replay --------------------------------------------------------

    def replay(self) -> int:
        """Rebuild the database state from the log; returns the number of
        records applied (committed-transaction records plus markers)."""
        records = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    break  # torn tail: the crash interrupted this write
                try:
                    records.append(json.loads(line))
                except ValueError:
                    break  # corrupt tail line; nothing after it counts
        committed = {r["x"] for r in records if r.get("t") == "commit"}
        heaps: dict[str, dict[int, tuple]] = {}
        # Highest rid mentioned per table — committed or not: versions
        # appended after this reopen must not reuse a logged rid, or a
        # later replay would fold two generations' rows together.
        max_rid: dict[str, int] = {}
        for record in records:
            if record.get("t") in ("ins", "del"):
                name, rid = record["tb"], record["r"]
                if rid > max_rid.get(name, 0):
                    max_rid[name] = rid
        applied = 0
        for record in records:
            kind = record.get("t")
            if kind == "commit":
                if record["x"] in committed:
                    applied += 1
                continue
            if record.get("x") not in committed:
                continue
            applied += 1
            if kind == "ins":
                heaps.setdefault(record["tb"], {})[record["r"]] = tuple(
                    decode_value(v) for v in record["v"])
            elif kind == "del":
                heaps.get(record["tb"], {}).pop(record["r"], None)
            elif kind == "ddl":
                self._apply_ddl(record["op"], heaps)
        for name, rows in heaps.items():
            table = self.db.catalog.tables.get(name)
            if table is not None and rows:
                # No transaction is current: the bulk load freezes, and
                # insert_many maintains every index the DDL pass declared.
                table.insert_many(list(rows.values()))
                # Restore each row's logged rid (insert_many assigned
                # fresh ones): delete records appended after this reopen
                # must keep naming the rows they actually touched.
                for version, rid in zip(table._versions[-len(rows):],
                                        rows.keys()):
                    version.rid = rid
        for name, top in max_rid.items():
            table = self.db.catalog.tables.get(name)
            if table is not None and table._rid_counter < top:
                table._rid_counter = top
        self.db.clear_plan_cache()
        return applied

    def _apply_ddl(self, op: list, heaps: dict) -> None:
        catalog = self.db.catalog
        kind = op[0]
        if kind == "create_table":
            catalog.create_table(op[1], op[2], op[3], if_not_exists=True)
        elif kind == "drop_table":
            catalog.drop_table(op[1], if_exists=True)
            heaps.pop(op[1], None)
        elif kind == "create_index":
            catalog.create_index(op[1], op[2],
                                 [(c, bool(d)) for c, d in op[3]],
                                 if_not_exists=True)
        elif kind == "drop_index":
            catalog.drop_index(op[1], if_exists=True)
        elif kind == "create_type":
            if catalog.get_type(op[1]) is None:
                catalog.create_type(op[1], op[2], op[3])
        elif kind == "create_function":
            from .catalog import FunctionDef
            spec = op[1]
            catalog.register_function(
                FunctionDef(name=spec["name"], kind=spec["kind"],
                            param_names=list(spec["params"]),
                            param_types=list(spec["types"]),
                            return_type=spec["ret"], body=spec["body"],
                            # .get(): logs written before volatility
                            # tracking replay fine without it
                            declared_volatility=spec.get("volatility")),
                replace=True)
        elif kind == "drop_function":
            catalog.drop_function(op[1], if_exists=True)
