"""Write-ahead log: fsync-on-commit durability and replay-on-open.

``Database(path=...)`` attaches a :class:`WalManager`.  Transactions
buffer their log records in memory (``Transaction.wal_buf``); nothing
touches the file until COMMIT, which appends every buffered record plus
a commit marker, flushes, and ``fsync``\\ s — so the log never contains a
half-transaction followed by its commit marker, and rollback is free
(the buffer is simply discarded).

Record format: one JSON object per line (a torn tail line from a crash
mid-write is detected and ignored during replay).

* ``{"t": "ins", "x": xid, "tb": table, "r": rid, "v": [values...]}``
* ``{"t": "del", "x": xid, "tb": table, "r": rid}``
* ``{"t": "ddl", "x": xid, "op": [opname, ...args]}``
* ``{"t": "commit", "x": xid}``

Row identity across the log is the per-table monotonic ``rid`` stamped
on every :class:`~repro.sql.txn.RowVersion` — an UPDATE logs a ``del``
of the old rid plus an ``ins`` of the new one.  Values are JSON with two
tagged containers (``{"R": [...]}`` for composite
:class:`~repro.sql.values.Row` values, ``{"L": [...]}`` for arrays);
everything else (NULL, bool, int, float including NaN/Infinity, text)
round-trips natively.

Replay (:meth:`WalManager.replay`) makes two passes: collect the xids
with a commit marker, then apply only their records in log order.  DDL
operations are applied structurally against the catalog; ``ins``/``del``
records fold into per-table ``rid -> row`` maps that bulk-load at the
end, so sorted and hash indexes — including ones a replayed
``CREATE INDEX`` declared — are rebuilt consistently by the ordinary
``insert_many`` maintenance path.

There is no checkpointing: the log grows for the lifetime of the file
and every open replays it from the start.  Compiled functions registered
programmatically (``register_compiled_function``) are not logged — they
live in Python objects, not SQL text — and must be re-registered after a
durable reopen.

Fault injection for the crash-recovery suite: set ``REPRO_WAL_FAULT`` to
``crash:N`` (hard-exit immediately after appending the N-th record) or
``torn:N`` (write half of the N-th record with no newline, then
hard-exit) before opening the database.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .profiler import WAL_RECORDS, WAL_REPLAYED
from .values import Row, Value


def encode_value(value: Value):
    """JSON-encodable form of one SQL value (tags Row and array)."""
    if isinstance(value, Row):
        encoded = {"R": [encode_value(v) for v in value.values]}
        if value.names is not None:
            encoded["n"] = list(value.names)
        if value.type_name is not None:
            encoded["tn"] = value.type_name
        return encoded
    if isinstance(value, list):
        return {"L": [encode_value(v) for v in value]}
    return value


def decode_value(value) -> Value:
    if isinstance(value, dict):
        if "R" in value:
            return Row(tuple(decode_value(v) for v in value["R"]),
                       names=value.get("n"), type_name=value.get("tn"))
        return [decode_value(v) for v in value["L"]]
    return value


def _dumps(record: dict) -> str:
    return json.dumps(record, separators=(",", ":"))


class WalManager:
    """Owns one log file: append path for commits, replay path for open."""

    def __init__(self, db, path: str):
        self.db = db
        self.path = path
        self.profiler = db.profiler
        self._fault_kind: Optional[str] = None
        self._fault_at = 0
        fault = os.environ.get("REPRO_WAL_FAULT")
        if fault:
            kind, _, at = fault.partition(":")
            if kind in ("crash", "torn") and at.isdigit():
                self._fault_kind, self._fault_at = kind, int(at)
        self._appended = 0
        if os.path.exists(path):
            replayed = self.replay()
            if replayed and self.profiler is not None:
                self.profiler.bump(WAL_REPLAYED, replayed)
        self._fh = open(path, "a", encoding="utf-8")

    # -- record builders (storage calls these while buffering) ---------

    def insert_record(self, xid: int, table: str, rid: int, data) -> dict:
        return {"t": "ins", "x": xid, "tb": table, "r": rid,
                "v": [encode_value(v) for v in data]}

    def delete_record(self, xid: int, table: str, rid: int) -> dict:
        return {"t": "del", "x": xid, "tb": table, "r": rid}

    # -- commit path ---------------------------------------------------

    def commit(self, xid: int, records: list) -> None:
        """Append *records* plus the commit marker; flush and fsync.

        The commit marker is what makes the transaction durable: replay
        ignores any records whose xid never reached its marker.
        """
        for record in records:
            self._append(_dumps(record))
        self._append(_dumps({"t": "commit", "x": xid}))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if self.profiler is not None:
            self.profiler.bump(WAL_RECORDS, len(records) + 1)

    def _append(self, line: str) -> None:
        n = self._appended + 1
        if self._fault_kind == "torn" and n == self._fault_at:
            self._fh.write(line[:max(1, len(line) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os._exit(1)
        self._fh.write(line + "\n")
        self._appended = n
        if self._fault_kind == "crash" and n == self._fault_at:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os._exit(1)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- replay --------------------------------------------------------

    def replay(self) -> int:
        """Rebuild the database state from the log; returns the number of
        records applied (committed-transaction records plus markers)."""
        records = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    break  # torn tail: the crash interrupted this write
                try:
                    records.append(json.loads(line))
                except ValueError:
                    break  # corrupt tail line; nothing after it counts
        committed = {r["x"] for r in records if r.get("t") == "commit"}
        heaps: dict[str, dict[int, tuple]] = {}
        # Highest rid mentioned per table — committed or not: versions
        # appended after this reopen must not reuse a logged rid, or a
        # later replay would fold two generations' rows together.
        max_rid: dict[str, int] = {}
        for record in records:
            if record.get("t") in ("ins", "del"):
                name, rid = record["tb"], record["r"]
                if rid > max_rid.get(name, 0):
                    max_rid[name] = rid
        applied = 0
        for record in records:
            kind = record.get("t")
            if kind == "commit":
                if record["x"] in committed:
                    applied += 1
                continue
            if record.get("x") not in committed:
                continue
            applied += 1
            if kind == "ins":
                heaps.setdefault(record["tb"], {})[record["r"]] = tuple(
                    decode_value(v) for v in record["v"])
            elif kind == "del":
                heaps.get(record["tb"], {}).pop(record["r"], None)
            elif kind == "ddl":
                self._apply_ddl(record["op"], heaps)
        for name, rows in heaps.items():
            table = self.db.catalog.tables.get(name)
            if table is not None and rows:
                # No transaction is current: the bulk load freezes, and
                # insert_many maintains every index the DDL pass declared.
                table.insert_many(list(rows.values()))
                # Restore each row's logged rid (insert_many assigned
                # fresh ones): delete records appended after this reopen
                # must keep naming the rows they actually touched.
                for version, rid in zip(table._versions[-len(rows):],
                                        rows.keys()):
                    version.rid = rid
        for name, top in max_rid.items():
            table = self.db.catalog.tables.get(name)
            if table is not None and table._rid_counter < top:
                table._rid_counter = top
        self.db.clear_plan_cache()
        return applied

    def _apply_ddl(self, op: list, heaps: dict) -> None:
        catalog = self.db.catalog
        kind = op[0]
        if kind == "create_table":
            catalog.create_table(op[1], op[2], op[3], if_not_exists=True)
        elif kind == "drop_table":
            catalog.drop_table(op[1], if_exists=True)
            heaps.pop(op[1], None)
        elif kind == "create_index":
            catalog.create_index(op[1], op[2],
                                 [(c, bool(d)) for c, d in op[3]],
                                 if_not_exists=True)
        elif kind == "drop_index":
            catalog.drop_index(op[1], if_exists=True)
        elif kind == "create_type":
            if catalog.get_type(op[1]) is None:
                catalog.create_type(op[1], op[2], op[3])
        elif kind == "create_function":
            from .catalog import FunctionDef
            spec = op[1]
            catalog.register_function(
                FunctionDef(name=spec["name"], kind=spec["kind"],
                            param_names=list(spec["params"]),
                            param_types=list(spec["types"]),
                            return_type=spec["ret"], body=spec["body"]),
                replace=True)
        elif kind == "drop_function":
            catalog.drop_function(op[1], if_exists=True)
