"""Cooperative query cancellation: one token per session, checked in loops.

The engine runs every statement to completion on one thread while holding
``Database._exec_lock``, so cancellation cannot be preemptive — nothing
else can take the lock away from a runaway join or recursive CTE.  What a
canceller *can* do is flip a flag that the running statement polls from
its hot loops: the Volcano iterators (scan / join / recursion / batched
trampoline), the aggregation tick loop, and the PL/pgSQL interpreter's
per-statement ``_tick`` all call :meth:`CancelToken.check`, which raises
:class:`~repro.sql.errors.QueryCanceledError` (SQLSTATE 57014) once the
token is tripped or its deadline has passed.

Two writers arm or trip a token:

* ``_TxnScope`` arms it at statement start with the session's effective
  ``statement_timeout`` (milliseconds, 0 = no deadline), and
* the wire server's event loop trips it from *another thread* when a
  ``CancelRequest`` with the right (pid, secret) pair arrives.

The cross-thread trip is deliberately lock-free: ``_canceled`` is a
single attribute write, and the worst race — a trip landing just after
the statement finished — only cancels nothing, because arming at the
next statement start clears the flag.  That matches PostgreSQL, where a
cancel racing a statement boundary is allowed to get lost.

The error unwinds through the ordinary statement-error path:
``_TxnScope.__exit__`` rolls back to the statement's undo mark, so
inside an explicit transaction only the canceled statement is undone and
the block keeps its earlier work.
"""

from __future__ import annotations

import time
from typing import Optional

from .errors import QueryCanceledError


class CancelToken:
    """Per-session cancellation flag plus optional statement deadline."""

    __slots__ = ("_canceled", "_deadline")

    def __init__(self) -> None:
        self._canceled = False
        self._deadline: Optional[float] = None

    def arm(self, timeout_ms: int = 0) -> None:
        """Start a statement: clear stale trips, set the deadline.

        Called with the exec lock held, so it cannot race another
        statement on the same session; a concurrent :meth:`trip` may
        land just before or after and is honored either way at the next
        :meth:`check`.
        """
        self._canceled = False
        self._deadline = (time.monotonic() + timeout_ms / 1000.0
                          if timeout_ms > 0 else None)

    def disarm(self) -> None:
        """End a statement: drop the deadline, keep any pending trip.

        A trip that arrives between statements stays pending only until
        the next :meth:`arm` clears it (lost-cancel-at-the-boundary is
        the PostgreSQL-compatible behavior).
        """
        self._deadline = None

    def trip(self) -> None:
        """Request cancellation; safe to call from any thread."""
        self._canceled = True

    @property
    def tripped(self) -> bool:
        return self._canceled

    def check(self) -> None:
        """Raise :class:`QueryCanceledError` if canceled or timed out.

        Cheap enough for per-iteration use: two attribute loads on the
        happy path, a clock read only when a deadline is armed.
        """
        if self._canceled:
            raise QueryCanceledError("canceling statement due to user request")
        deadline = self._deadline
        if deadline is not None and time.monotonic() > deadline:
            raise QueryCanceledError(
                "canceling statement due to statement timeout")


#: Shared fallback for code running outside any statement (bare table
#: access, bootstrap loads): a token nobody ever arms or trips, so hot
#: loops can poll unconditionally instead of branching on None.
NEVER_CANCELED = CancelToken()
