"""GUC-style settings registry: declarative, validated engine configuration.

Before this module, plan-affecting knobs were bare attributes
(``db.planner.enable_rangescan = False``) that the caller had to remember to
follow with ``db.clear_plan_cache()`` — forget it and cached plans keep the
old strategy.  The registry replaces that imperative knob-poking with a
declarative surface (``SET name = value`` / ``SHOW name`` / ``RESET name``):

* every setting declares its **type** (bool / int / enum), **domain**
  (choices, minimum) and whether it is **plan-affecting**,
* values are validated before they are applied (`SettingError` otherwise),
* the tuple of all plan-affecting values is the :meth:`~SettingsRegistry.
  fingerprint` — part of every statement-plan-cache key and of every
  prepared-statement stamp, so a plan-affecting change can never resurrect
  a plan built under different flags,
* assigning a plan-affecting setting through :meth:`SettingsRegistry.assign`
  additionally clears the function-body plan caches (the part the
  fingerprint cannot reach), replacing the manual ``clear_plan_cache()``
  idiom.

Settings are *bound* to the pre-existing attributes on
:class:`~repro.sql.engine.Database` and :class:`~repro.sql.planner.Planner`
rather than duplicated: direct attribute access (the legacy surface, still
used by tests and benchmarks) and SET/SHOW always agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import TYPE_CHECKING, Optional, Sequence

from .errors import SettingError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Database

_BOOL_WORDS = {
    "true": True, "on": True, "yes": True, "1": True, "t": True,
    "false": False, "off": False, "no": False, "0": False, "f": False,
}


@dataclass(frozen=True)
class Setting:
    """One registered configuration parameter.

    ``scope`` names the object carrying the backing attribute (``"db"`` or
    ``"planner"``); ``attr`` the attribute itself.  ``plan_affecting``
    settings participate in the plan fingerprint: cached plans depend on
    their value at plan time.
    """

    name: str
    scope: str                      # 'db' | 'planner'
    attr: str
    type: str                       # 'bool' | 'int' | 'enum'
    plan_affecting: bool
    description: str
    choices: Optional[tuple[str, ...]] = None
    minimum: Optional[int] = None

    def _target(self, db: "Database"):
        return db if self.scope == "db" else db.planner

    def get(self, db: "Database"):
        return getattr(self._target(db), self.attr)

    def set_raw(self, db: "Database", value) -> None:
        """Write the backing attribute without any validation or cache
        invalidation (session overlays use this: the value was validated
        when it entered the overlay, and plan correctness is carried by the
        fingerprint in the plan-cache keys)."""
        setattr(self._target(db), self.attr, value)

    # -- value conversion ------------------------------------------------

    def parse(self, raw) -> object:
        """Coerce *raw* (a literal from SET, or a Python value from the
        programmatic API) into this setting's domain, or raise
        :class:`SettingError`."""
        if self.type == "bool":
            if isinstance(raw, bool):
                return raw
            if isinstance(raw, int) and raw in (0, 1):
                return bool(raw)
            if isinstance(raw, str):
                value = _BOOL_WORDS.get(raw.strip().lower())
                if value is not None:
                    return value
            raise SettingError(
                f"parameter {self.name!r} requires a boolean value "
                f"(got {raw!r})")
        if self.type == "int":
            if isinstance(raw, bool) or not isinstance(raw, (int, float, str)):
                raise SettingError(
                    f"parameter {self.name!r} requires an integer value "
                    f"(got {raw!r})")
            try:
                value = int(str(raw)) if isinstance(raw, str) else int(raw)
            except ValueError:
                raise SettingError(
                    f"parameter {self.name!r} requires an integer value "
                    f"(got {raw!r})")
            if isinstance(raw, float) and raw != value:
                raise SettingError(
                    f"parameter {self.name!r} requires an integer value "
                    f"(got {raw!r})")
            if self.minimum is not None and value < self.minimum:
                raise SettingError(
                    f"{value} is out of range for parameter "
                    f"{self.name!r} (minimum {self.minimum})")
            return value
        # enum
        if not isinstance(raw, str):
            raise SettingError(
                f"parameter {self.name!r} requires one of "
                f"{', '.join(self.choices or ())} (got {raw!r})")
        value = raw.strip().lower()
        if self.choices and value not in self.choices:
            raise SettingError(
                f"invalid value {raw!r} for parameter {self.name!r} "
                f"(one of: {', '.join(self.choices)})")
        return value

    def format(self, value) -> str:
        """Render *value* for SHOW (PostgreSQL style: booleans as on/off)."""
        if self.type == "bool":
            return "on" if value else "off"
        return str(value)

    def enumerable_values(self) -> Optional[tuple]:
        """Every value of a finitely-enumerable domain, or None.

        Bools enumerate to ``(False, True)`` and enums to their declared
        choices; int settings have no finite domain and return None.  This
        is the hook the differential fuzzer's oracle matrix is built from
        (:func:`repro.fuzz.oracle.settings_matrix`): a new planner flag
        declared in :func:`_default_settings` joins the fuzzed
        configuration space with no fuzzer change.
        """
        if self.type == "bool":
            return (False, True)
        if self.type == "enum":
            return tuple(self.choices or ())
        return None


def _default_settings() -> list[Setting]:
    planner_flags = [
        ("enable_rangescan",
         "Push range conjuncts into bisect-backed IndexRangeScans."),
        ("enable_sort_elim",
         "Drop Sort nodes an existing sorted index already satisfies."),
        ("enable_topn",
         "Fuse constant ORDER BY .. LIMIT into a bounded-heap TopN."),
        ("enable_mergejoin",
         "Merge join when both equi-join inputs are index-ordered."),
        ("enable_vectorize",
         "Run single-table SELECT cores batch-at-a-time (column batches)."),
        ("enable_hashjoin",
         "Plan equi-joins as build/probe hash joins."),
        ("enable_pushdown",
         "Push single-relation WHERE conjuncts down to their scans."),
        ("batch_compiled",
         "Evaluate compiled-UDF call sites set-oriented (BatchedUdf)."),
        ("batch_dedup",
         "Share one trampoline activation between equal argument vectors."),
        ("inline_compiled",
         "Inline compiled functions at call sites at plan time."),
    ]
    settings = [
        Setting(name, "planner", name, "bool", True, description)
        for name, description in planner_flags
    ]
    settings.append(Setting(
        "batch_strategy", "planner", "batch_strategy", "enum", True,
        "How BatchedUdf runs the trampoline: compiled transition closures "
        "(machine) or the batched Qf through the recursive-CTE executor "
        "(sql).", choices=("machine", "sql")))
    settings.extend([
        Setting("max_udf_depth", "db", "max_udf_depth", "int", False,
                "Stack-depth limit for directly recursive SQL UDFs.",
                minimum=1),
        Setting("max_interp_statements", "db", "max_interp_statements",
                "int", False,
                "Statement budget per PL/pgSQL activation (runaway guard).",
                minimum=1),
        Setting("max_recursion_iterations", "db",
                "max_recursion_iterations", "int", False,
                "Iteration limit for WITH RECURSIVE evaluation.", minimum=1),
        Setting("plan_cache_size", "db", "plan_cache_size", "int", False,
                "Maximum cached statement plans (LRU; 0 disables caching).",
                minimum=0),
        Setting("plan_cache_enabled", "db", "plan_cache_enabled", "bool",
                False, "Master switch for the statement plan cache."),
        Setting("statement_timeout", "db", "statement_timeout", "int", False,
                "Cancel any statement running longer than this many "
                "milliseconds (0 disables the timeout).", minimum=0),
        Setting("wal_checkpoint_interval", "db", "wal_checkpoint_interval",
                "int", False,
                "Auto-checkpoint the WAL after this many appended records "
                "(0 disables auto-checkpointing; CHECKPOINT always works).",
                minimum=0),
        # Deliberately not plan_affecting: it gates DDL-time diagnostics,
        # never a plan choice, and must stay out of the fuzzer's
        # settings matrix (plan_axes) and the plan fingerprint.
        Setting("check_function_bodies", "db", "check_function_bodies",
                "enum", False,
                "Run the static analyzer at CREATE FUNCTION time: off "
                "(skip), warn (report diagnostics as notices), error "
                "(reject functions with error-severity diagnostics).",
                choices=("off", "warn", "error")),
    ])
    return settings


def _tuple_getter(attrs: list[str]):
    """A callable reading *attrs* off one object as a tuple, C-fast."""
    if not attrs:
        empty = ()
        return lambda obj: empty
    if len(attrs) == 1:
        single = attrgetter(attrs[0])
        return lambda obj: (single(obj),)
    return attrgetter(*attrs)


class SettingsRegistry:
    """All registered settings of one :class:`~repro.sql.engine.Database`.

    The registry itself is stateless about values — it reads and writes the
    backing attributes — so the legacy attribute-poking surface and SET/SHOW
    can never disagree.
    """

    def __init__(self, db: "Database"):
        self._db = db
        self._settings: dict[str, Setting] = {
            s.name: s for s in _default_settings()}
        self._plan_affecting: tuple[Setting, ...] = tuple(
            s for s in self._settings.values() if s.plan_affecting)
        # Composite attrgetters make fingerprint() two C calls instead of
        # a Python-level get() per setting — it runs on every prepared
        # execution and every plan-cache probe, which the wire server
        # turned into a per-request cost.  (Values are still read live:
        # tests poke backing attributes directly, so caching the tuple
        # would go stale.)
        self._fp_db_get = _tuple_getter(
            [s.attr for s in self._plan_affecting if s.scope == "db"])
        self._fp_planner_get = _tuple_getter(
            [s.attr for s in self._plan_affecting if s.scope == "planner"])

    def __iter__(self):
        return iter(self._settings.values())

    def names(self) -> list[str]:
        return sorted(self._settings)

    def lookup(self, name: str) -> Setting:
        setting = self._settings.get(name.lower())
        if setting is None:
            raise SettingError(
                f"unrecognized configuration parameter {name!r}")
        return setting

    def get(self, name: str):
        """Current effective (typed) value of *name*."""
        return self.lookup(name).get(self._db)

    def show(self, name: str) -> str:
        """Current effective value of *name*, rendered for SHOW."""
        setting = self.lookup(name)
        return setting.format(setting.get(self._db))

    def defaults(self) -> dict[str, object]:
        """The boot-time defaults, captured by :class:`~repro.sql.engine.
        Database` right after construction (RESET targets)."""
        return {name: s.get(self._db) for name, s in self._settings.items()}

    def plan_axes(self) -> list[tuple[Setting, tuple]]:
        """The machine-enumerable plan-affecting settings with their domains.

        Each entry is ``(setting, values)`` where *values* is the setting's
        full finite domain (see :meth:`Setting.enumerable_values`).  The
        differential fuzzer derives its oracle configuration matrix from
        this list, so the matrix tracks the registry: adding a planner flag
        here is all it takes for the fuzzer to sweep it.
        """
        return [(s, s.enumerable_values()) for s in self._plan_affecting
                if s.enumerable_values() is not None]

    def fingerprint(self) -> tuple:
        """The tuple of all plan-affecting values, read live.

        Part of every statement-plan-cache key and prepared-statement
        stamp: a plan built under one fingerprint is invisible under any
        other, which is what makes SET safe without manual
        ``clear_plan_cache()`` calls — including for per-session overlays
        that swap values around single statements.
        """
        db = self._db
        return self._fp_db_get(db) + self._fp_planner_get(db.planner)

    def assign(self, name: str, raw) -> object:
        """Validate and apply a global assignment; returns the typed value.

        Plan-affecting changes also drop the function-body plan caches
        (compiled/SQL function bodies are not fingerprint-stamped), so the
        next call replans under the new flags — the automatic version of
        the manual ``clear_plan_cache()`` idiom.
        """
        setting = self.lookup(name)
        value = setting.parse(raw)
        changed = setting.get(self._db) != value
        setting.set_raw(self._db, value)
        if changed and setting.plan_affecting:
            self._db.clear_plan_cache()
        if setting.name == "plan_cache_size":
            self._db._trim_plan_cache()
        return value

    def reset(self, name: str) -> object:
        """Restore *name* to its boot-time default (global scope)."""
        setting = self.lookup(name)
        return self.assign(setting.name,
                           self._db._setting_defaults[setting.name])
