"""Transaction manager: xids, snapshots, undo logs, savepoints.

The storage layer (:mod:`repro.sql.storage`) keeps every heap row as a
:class:`RowVersion` stamped with the transaction id that created it
(``xmin``) and, once deleted or superseded, the id that removed it
(``xmax``).  Nothing is ever mutated in place: UPDATE appends a new
version and stamps ``xmax`` on the old one, DELETE only stamps ``xmax``.
Which versions a statement sees is decided entirely by the
:class:`Snapshot` it runs under — the MVCC visibility rules in
:meth:`Snapshot.visible` mirror PostgreSQL's:

* a version is visible when its inserter committed before the snapshot
  (or is the snapshot's own transaction, in an earlier command), and
* it has no deleter, or the deleter is still in progress / aborted /
  committed after the snapshot (or is the snapshot's own transaction in
  a *later* command — a deleting statement still sees the rows it is
  deleting; this is what makes ``UPDATE t SET ...`` Halloween-safe).

Two reserved xids bracket the real ones: :data:`ABORTED_XID` (0) marks
versions whose inserter rolled back — invisible to everyone, reclaimed
by vacuum — and :data:`FROZEN_XID` (1) marks bootstrap rows written
outside any transaction (direct ``table.insert`` calls from workload
loaders, WAL replay, ...), which every snapshot treats as committed
infinitely long ago.  Real transactions take xids from 2 up, and only
when they first *write*: read-only transactions never consume an xid,
so a read-mostly workload keeps ``next_xid`` stable and the storage
layer's visible-rows cache hot.

Rollback is implemented with an undo log rather than by walking the
heap: every insert/delete records a compensating entry, and SAVEPOINT /
ROLLBACK TO / statement-level atomicity are all just marks into that
log.  First-writer-wins conflict detection lives here too: stamping
``xmax`` over a version some concurrent transaction already claimed
raises :class:`~repro.sql.errors.SerializationError`.
"""

from __future__ import annotations

from typing import Optional

from .errors import ExecutionError
from .profiler import TXN_COMMITTED, TXN_ROLLED_BACK

#: xmin sentinel for versions whose inserting transaction rolled back.
ABORTED_XID = 0
#: xid for bootstrap writes outside any transaction: always committed.
FROZEN_XID = 1
#: First xid handed to a real transaction.
FIRST_XID = 2

#: Transaction status bytes kept in :attr:`TransactionManager.statuses`.
COMMITTED = "C"
ABORTED = "A"


class RowVersion:
    """One immutable heap row plus its MVCC stamps.

    ``cmin``/``cmax`` are command ids *within* the stamping transaction:
    a statement with command id ``cid`` sees versions it inserted only
    when ``cmin < cid`` and still sees versions it deleted while
    ``cmax >= cid`` (i.e. its own deletions take effect for the *next*
    statement, not mid-scan).
    """

    __slots__ = ("data", "xmin", "cmin", "xmax", "cmax", "rid")

    def __init__(self, data: tuple, xmin: int, cmin: int, rid: int):
        self.data = data
        self.xmin = xmin
        self.cmin = cmin
        self.xmax: Optional[int] = None
        self.cmax = 0
        self.rid = rid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RowVersion(rid={self.rid}, xmin={self.xmin}, "
                f"xmax={self.xmax}, data={self.data!r})")


class Snapshot:
    """A consistent point-in-time view over versioned heaps.

    Captured per statement (autocommit) or once per transaction
    (explicit BEGIN, PostgreSQL's ``READ COMMITTED`` snapshot-per-
    statement is deliberately *not* modelled — one snapshot for the
    whole transaction gives snapshot isolation).  ``active`` is the set
    of xids in progress at capture time, ``xmax`` the next xid to be
    assigned; anything at or above ``xmax`` started after us.
    """

    __slots__ = ("xid", "cid", "xmax", "active", "_status")

    def __init__(self, xid: Optional[int], cid: int, xmax: int,
                 active: frozenset, status: dict):
        self.xid = xid          # owning txn's xid (None while read-only)
        self.cid = cid          # owning txn's current command id
        self.xmax = xmax        # first xid invisible to this snapshot
        self.active = active    # xids in progress when captured
        self._status = status   # shared manager status map

    def visible(self, v: RowVersion) -> bool:
        """Apply the MVCC visibility rules to one version."""
        xmin = v.xmin
        if xmin == self.xid:
            # Our own insert: visible to later commands only.
            if v.cmin >= self.cid:
                return False
        elif xmin != FROZEN_XID:
            if xmin >= self.xmax or xmin in self.active:
                return False  # inserter started after us / still running
            if self._status.get(xmin) != COMMITTED:
                return False  # inserter aborted (or ABORTED_XID sentinel)
        xmax = v.xmax
        if xmax is None:
            return True
        if xmax == self.xid:
            # Our own delete: takes effect for later commands.
            return v.cmax >= self.cid
        if xmax == FROZEN_XID:
            return False
        if xmax >= self.xmax or xmax in self.active:
            return True  # deleter started after us / still running
        return self._status.get(xmax) != COMMITTED


class Transaction:
    """One transaction: lazy xid, snapshot, undo log, savepoints.

    Autocommit statements run inside a throwaway Transaction that the
    engine commits (or rolls back) when the statement finishes; BEGIN
    simply flips ``explicit`` on the current one and parks it on the
    session so subsequent statements reuse it.
    """

    __slots__ = ("mgr", "db", "session", "explicit", "finished",
                 "xid", "cid", "snapshot", "undo", "wal_buf",
                 "savepoints", "local_restores", "tables_touched",
                 "gen_at_begin", "ddl_bumps", "ddl_partial_undo")

    def __init__(self, mgr: "TransactionManager", session=None,
                 explicit: bool = False):
        self.mgr = mgr
        self.db = mgr.db
        self.session = session
        self.explicit = explicit
        self.finished = False
        self.xid: Optional[int] = None
        self.cid = 0
        self.snapshot: Optional[Snapshot] = None
        self.undo: list = []
        self.wal_buf: list = []
        self.savepoints: list = []      # (name, undo_len, wal_len)
        self.local_restores: list = []  # SET LOCAL reversal records
        self.tables_touched: set = set()
        self.gen_at_begin = db._plan_generation if (db := mgr.db) else 0
        self.ddl_bumps = 0
        self.ddl_partial_undo = False

    # -- statement lifecycle ------------------------------------------

    def begin_statement(self) -> tuple[int, int]:
        """Advance the command id, ensure a snapshot, return an undo mark.

        The mark ``(len(undo), len(wal_buf))`` makes each statement
        atomic inside an explicit transaction: on error the engine rolls
        back to it, leaving earlier statements intact.
        """
        self.cid += 1
        if self.snapshot is None:
            self.snapshot = self.mgr.capture(self.xid, self.cid)
        else:
            self.snapshot.cid = self.cid
        return (len(self.undo), len(self.wal_buf))

    def make_explicit(self, session) -> None:
        """Turn the current autocommit transaction into a BEGIN block."""
        self.explicit = True
        self.session = session
        # Re-capture at the first post-BEGIN statement so the block's
        # snapshot does not predate BEGIN itself.
        self.snapshot = None
        self.gen_at_begin = self.db._plan_generation
        self.ddl_bumps = 0

    # -- write-side bookkeeping ---------------------------------------

    def ensure_xid(self) -> int:
        if self.xid is None:
            self.xid = self.mgr.assign_xid(self)
            if self.snapshot is not None:
                self.snapshot.xid = self.xid
        return self.xid

    def record_ddl(self, undo, wal_op) -> None:
        """Log one DDL operation: an undo callable plus its WAL record."""
        self.ensure_xid()
        self.undo.append(("ddl", undo))
        if wal_op is not None and self.mgr.wal is not None:
            self.wal_buf.append({"t": "ddl", "x": self.xid, "op": wal_op})
        self.ddl_bumps += 1

    # -- savepoints ----------------------------------------------------

    def define_savepoint(self, name: str) -> None:
        self.savepoints.append((name.lower(), len(self.undo), len(self.wal_buf)))

    def rollback_to_savepoint(self, name: str) -> None:
        key = name.lower()
        for i in range(len(self.savepoints) - 1, -1, -1):
            if self.savepoints[i][0] == key:
                _, undo_len, wal_len = self.savepoints[i]
                # Savepoints established after this one are destroyed;
                # the target itself survives (PostgreSQL semantics).
                del self.savepoints[i + 1:]
                self.rollback_to_mark((undo_len, wal_len))
                return
        raise ExecutionError(f"savepoint \"{name}\" does not exist")

    def release_savepoint(self, name: str) -> None:
        key = name.lower()
        for i in range(len(self.savepoints) - 1, -1, -1):
            if self.savepoints[i][0] == key:
                del self.savepoints[i:]
                return
        raise ExecutionError(f"savepoint \"{name}\" does not exist")

    # -- undo ----------------------------------------------------------

    def rollback_to_mark(self, mark: tuple[int, int],
                         partial: bool = True) -> None:
        """Undo everything recorded after *mark*, newest first.

        *partial* distinguishes statement/savepoint unwinds from the
        full-transaction rollback: only partial ones poison the DDL-
        generation restore (the transaction lives on with some of its
        DDL undone, so the simple all-or-nothing stamp accounting in
        :meth:`rollback` no longer holds).
        """
        undo_len, wal_len = mark
        undo = self.undo
        undid_ddl = False
        while len(undo) > undo_len:
            entry = undo.pop()
            kind = entry[0]
            if kind == "ins":
                entry[1]._undo_insert(entry[2])
            elif kind == "del":
                entry[1]._undo_delete(entry[2], entry[3], entry[4])
            else:  # "ddl"
                entry[1]()
                undid_ddl = True
        del self.wal_buf[wal_len:]
        # Drop savepoints that no longer point inside the log.
        while self.savepoints and self.savepoints[-1][1] > undo_len:
            self.savepoints.pop()
        if partial and undid_ddl:
            self.ddl_partial_undo = True
            if self.db is not None:
                # Plans cached while the undone DDL was live may reference
                # dropped structures: start a fresh generation.
                self.db.clear_plan_cache()

    # -- finish --------------------------------------------------------

    def commit(self) -> None:
        if self.finished:
            return
        mgr = self.mgr
        if self.xid is not None:
            if self.wal_buf and mgr.wal is not None:
                mgr.wal.commit(self.xid, self.wal_buf)
            mgr.statuses[self.xid] = COMMITTED
            mgr.active_xids.discard(self.xid)
            if mgr.profiler is not None:
                mgr.profiler.bump(TXN_COMMITTED)
        self.finished = True
        self._apply_local_restores()
        mgr.after_finish(self)

    def rollback(self) -> None:
        if self.finished:
            return
        mgr = self.mgr
        self.rollback_to_mark((0, 0), partial=False)
        if self.xid is not None:
            mgr.statuses[self.xid] = ABORTED
            mgr.active_xids.discard(self.xid)
            if mgr.profiler is not None:
                mgr.profiler.bump(TXN_ROLLED_BACK)
        self.finished = True
        if self.ddl_bumps and not self.ddl_partial_undo and self.db is not None:
            db = self.db
            if db._plan_generation == self.gen_at_begin + self.ddl_bumps:
                # Only our own DDL bumped the generation and every one
                # of those operations was just undone: restore the
                # pre-transaction stamp so prepared handles planned
                # before BEGIN stay valid (no spurious replan).  Plans
                # cached *during* the transaction carry in-transaction
                # stamps and will replan on next use.
                db._plan_generation = self.gen_at_begin
                db._plan_cache.clear()
                db._clear_function_plan_caches()
            else:
                db.clear_plan_cache()
        self._apply_local_restores()
        mgr.after_finish(self)

    def _apply_local_restores(self) -> None:
        if self.local_restores and self.session is not None:
            self.session._apply_restore_records(self.local_restores)
            self.local_restores = []


class TransactionManager:
    """Hands out xids and snapshots; tracks commit/abort status.

    ``current`` is the transaction the engine is executing a statement
    under right now — storage consults it to stamp writes and resolve
    reads.  ``statuses`` maps every xid ever assigned to ``"C"`` or
    ``"A"`` (in-progress xids are simply absent and listed in
    ``active_xids``).
    """

    __slots__ = ("db", "profiler", "wal", "next_xid", "statuses",
                 "active_xids", "current", "open_count")

    def __init__(self, profiler=None, db=None):
        self.db = db
        self.profiler = profiler
        self.wal = None  # attached by Database when running durable
        self.next_xid = FIRST_XID
        self.statuses: dict[int, str] = {FROZEN_XID: COMMITTED}
        self.active_xids: set[int] = set()
        self.current: Optional[Transaction] = None
        #: Unfinished Transaction objects, including read-only ones that
        #: never took an xid: vacuum must not run while any are open —
        #: an old read-only snapshot may still see versions whose deleter
        #: committed after it.
        self.open_count = 0

    def begin(self, session=None, explicit: bool = False) -> Transaction:
        self.open_count += 1
        return Transaction(self, session=session, explicit=explicit)

    def assign_xid(self, txn: Transaction) -> int:
        xid = self.next_xid
        self.next_xid = xid + 1
        self.active_xids.add(xid)
        return xid

    def capture(self, xid: Optional[int], cid: int) -> Snapshot:
        return Snapshot(xid, cid, self.next_xid,
                        frozenset(self.active_xids), self.statuses)

    def instant_snapshot(self) -> Snapshot:
        """A fresh snapshot for bare (non-statement) table access."""
        return Snapshot(None, 0, self.next_xid,
                        frozenset(self.active_xids), self.statuses)

    def current_snapshot(self) -> Snapshot:
        txn = self.current
        if txn is not None:
            if txn.snapshot is None:
                txn.snapshot = self.capture(txn.xid, txn.cid)
            return txn.snapshot
        return self.instant_snapshot()

    def status(self, xid: int) -> Optional[str]:
        return self.statuses.get(xid)

    def after_finish(self, txn: Transaction) -> None:
        """Opportunistic vacuum once nothing at all is in flight."""
        if self.open_count > 0:
            self.open_count -= 1
        if not self.open_count and not self.active_xids:
            for table in txn.tables_touched:
                table.maybe_vacuum()
        txn.tables_touched = set()
