"""Heap storage with a PostgreSQL-flavoured buffer-page accounting model.

The paper's Table 2 counts *buffer page writes* performed while evaluating
``parse()`` as a recursive CTE: vanilla ``WITH RECURSIVE`` materialises the
whole trace of function activations (quadratic bytes for an argument that
shrinks by one character per step), while ``WITH ITERATE`` keeps only the
latest activation and writes nothing.

We reproduce that metric with :class:`BufferManager`: every tuple appended to
a tracked :class:`TupleStore` is charged ``ROW_OVERHEAD + sum(value sizes)``
bytes, and a page write is recorded whenever the accumulated byte count
crosses an 8 KiB page boundary.  With PostgreSQL's 24-byte tuple header and
8192-byte pages this model lands within ~1 % of the paper's absolute counts
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Iterable, Optional, Sequence

from .errors import CatalogError, TypeError_
from .values import Value, _Reversed, key_class, sort_key, value_byte_size

PAGE_SIZE = 8192
ROW_OVERHEAD = 24  # PostgreSQL HeapTupleHeader is 23 bytes + padding


class BufferManager:
    """Counts logical page writes for all tuple stores of a database."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.pages_written = 0
        self.bytes_written = 0

    def charge(self, nbytes: int) -> None:
        """Charge *nbytes* of tuple data; record page writes on boundaries."""
        before = self.bytes_written // self.page_size
        self.bytes_written += nbytes
        after = self.bytes_written // self.page_size
        if after > before:
            self.pages_written += after - before

    def reset(self) -> None:
        self.pages_written = 0
        self.bytes_written = 0

    def snapshot(self) -> tuple[int, int]:
        return self.pages_written, self.bytes_written


def row_byte_size(row: Sequence[Value]) -> int:
    """On-disk size of one tuple under the model above."""
    return ROW_OVERHEAD + sum(value_byte_size(v) for v in row)


class TupleStore:
    """An append-only tuple container that charges a :class:`BufferManager`.

    Used for base-table heaps and for the recursive-CTE union accumulation.
    Set ``tracked=False`` for purely in-memory intermediates whose writes the
    paper's metric would not see (e.g. the one-row working "table" kept by
    WITH ITERATE).
    """

    def __init__(self, buffers: BufferManager | None, tracked: bool = True):
        self._buffers = buffers
        self._tracked = tracked and buffers is not None
        self.rows: list[tuple[Value, ...]] = []

    def append(self, row: Sequence[Value]) -> None:
        row_t = row if type(row) is tuple else tuple(row)
        self.rows.append(row_t)
        if self._tracked:
            self._buffers.charge(row_byte_size(row_t))

    def extend(self, rows: Iterable[Sequence[Value]]) -> None:
        for row in rows:
            self.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


#: Sort-key prefix of SQL NULL — NULLs sit at the tail of every ascending
#: key column (see :func:`repro.sql.values.sort_key`), so bounded range
#: probes can exclude them with one bisect.
NULL_SORT_KEY = sort_key(None)


class SortedIndex:
    """A bisect-backed ordered access path over one or more columns.

    ``keys`` is a sorted list of per-row key tuples (one
    :func:`~repro.sql.values.sort_key` component per index column, wrapped
    in :class:`~repro.sql.values._Reversed` for DESC columns) and ``rows``
    the parallel list of heap tuples.  Ascending columns therefore deliver
    NULLS LAST and descending columns NULLS FIRST — PostgreSQL's defaults —
    and a reversed scan of the whole structure yields the fully flipped
    ordering.

    The structure is maintained incrementally by :class:`HeapTable` on
    every DML path (INSERT/UPDATE/DELETE/TRUNCATE): point maintenance is
    O(log n) to locate plus O(n) list shift, against O(n log n) for the
    rebuild that a version-counter invalidation (the hash
    ``equality_index`` strategy) would pay per probe after DML.

    Per-column comparability classes are tracked so range probes can raise
    the same :class:`~repro.sql.errors.TypeError_` a scan-and-compare
    evaluation of the predicate would raise, instead of silently bisecting
    across SQL-incomparable values (see :meth:`check_probe`).
    """

    __slots__ = ("columns", "descending", "keys", "rows", "pinned",
                 "_classes")

    def __init__(self, columns: Sequence[int], descending: Sequence[bool],
                 rows: Iterable[tuple] = ()):
        self.columns = tuple(columns)
        self.descending = tuple(bool(d) for d in descending)
        self.keys: list[tuple] = []
        self.rows: list[tuple] = []
        #: True for CREATE INDEX declarations: a pinned index survives
        #: bulk DML by rebuilding eagerly; an unpinned (lazily
        #: auto-created) one is dropped instead and rebuilt on its next
        #: probe — if that ever comes.
        self.pinned = False
        #: Per column: comparability class -> [live count, display name].
        self._classes: list[dict] = [dict() for _ in self.columns]
        self.rebuild(rows)

    # -- keys ------------------------------------------------------------

    def key_of(self, row: Sequence[Value]) -> tuple:
        parts = []
        for column, desc in zip(self.columns, self.descending):
            part = sort_key(row[column])
            parts.append(_Reversed(part) if desc else part)
        return tuple(parts)

    def nonnull_end(self) -> int:
        """Index of the first all-trailing NULL-key row (single ascending
        column only): the exclusive upper bound of ``col > x`` probes."""
        return bisect_left(self.keys, (NULL_SORT_KEY,))

    # -- maintenance -----------------------------------------------------

    def rebuild(self, rows: Iterable[tuple]) -> None:
        # One key_of per row: sort decorated pairs on the key alone (ties
        # must not fall through to comparing raw rows, which can raise).
        pairs = sorted(((self.key_of(row), row) for row in rows),
                       key=itemgetter(0))
        self.keys = [key for key, _ in pairs]
        self.rows = [row for _, row in pairs]
        for classes in self._classes:
            classes.clear()
        for row in self.rows:
            self._track(row, +1)

    def insert(self, row: tuple) -> None:
        key = self.key_of(row)
        pos = bisect_right(self.keys, key)
        self.keys.insert(pos, key)
        self.rows.insert(pos, row)
        self._track(row, +1)

    def remove(self, row: tuple) -> bool:
        """Remove one entry for *row*; False when it cannot be located
        (the caller then falls back to a full rebuild)."""
        key = self.key_of(row)
        lo = bisect_left(self.keys, key)
        hi = bisect_right(self.keys, key)
        span = range(lo, hi)
        for pos in span:  # identity first: DML passes the stored tuples
            if self.rows[pos] is row:
                return self._delete_at(pos, row)
        for pos in span:
            if self.rows[pos] == row:
                return self._delete_at(pos, row)
        return False

    def _delete_at(self, pos: int, row: tuple) -> bool:
        del self.keys[pos]
        del self.rows[pos]
        self._track(row, -1)
        return True

    def _track(self, row: tuple, delta: int) -> None:
        for position, column in enumerate(self.columns):
            value = row[column]
            if value is None:
                continue  # NULL never participates in comparisons
            kind = key_class(value)
            entry = self._classes[position].setdefault(
                kind, [0, type(value).__name__])
            entry[0] += delta

    # -- probing ---------------------------------------------------------

    def probe_classes(self, position: int) -> dict:
        """Live comparability classes of key column *position*:
        ``class -> display type name`` (empty = only NULLs / no rows)."""
        return {kind: display
                for kind, (count, display) in self._classes[position].items()
                if count > 0}

    def check_probe(self, position: int, value: Value) -> None:
        """Raise like a scan-and-compare would: a probe value whose class
        differs from any live key value's class is SQL-incomparable."""
        kind = key_class(value)
        for other, display in self.probe_classes(position).items():
            if other != kind:
                raise TypeError_(f"cannot compare {display} with "
                                 f"{type(value).__name__}")

    def range_positions(self, lower, upper) -> tuple[int, int]:
        """``[start, stop)`` positions for a single-ascending-column range.

        *lower* / *upper* are ``(value, inclusive)`` or None for an open
        end.  NULL keys sit past ``nonnull_end()`` and are excluded
        whenever at least one bound is given (``col > x`` is never TRUE
        for NULL).
        """
        start, stop = 0, len(self.keys)
        if upper is not None:
            value, inclusive = upper
            probe = (sort_key(value),)
            stop = (bisect_right(self.keys, probe) if inclusive
                    else bisect_left(self.keys, probe))
        elif lower is not None:
            stop = self.nonnull_end()
        if lower is not None:
            value, inclusive = lower
            probe = (sort_key(value),)
            start = (bisect_left(self.keys, probe) if inclusive
                     else bisect_right(self.keys, probe))
        return start, max(start, stop)

    def __len__(self) -> int:
        return len(self.rows)


class HeapTable:
    """A named base table: column schema plus a tuple store."""

    def __init__(self, name: str, column_names: Sequence[str],
                 column_types: Sequence[str], buffers: BufferManager | None = None):
        if len(column_names) != len(column_types):
            raise CatalogError(f"table {name}: column name/type count mismatch")
        if len(set(c.lower() for c in column_names)) != len(column_names):
            raise CatalogError(f"table {name}: duplicate column names")
        self.name = name
        self.column_names = [c.lower() for c in column_names]
        self.column_types = list(column_types)
        self._store = TupleStore(buffers, tracked=True)
        self._version = 0
        self._indexes: dict[tuple[int, ...], tuple[int, dict]] = {}
        #: Sorted indexes, keyed by (column positions, descending flags).
        #: Unlike the version-invalidated hash indexes above, these are
        #: maintained incrementally by every DML method — probing them
        #: never pays a rebuild after DML.
        self._sorted: dict[tuple[tuple[int, ...], tuple[bool, ...]],
                           SortedIndex] = {}

    @property
    def rows(self) -> list[tuple[Value, ...]]:
        return self._store.rows

    def estimate_rows(self) -> int:
        """Planner-facing cardinality estimate: the current heap row count.

        Like PostgreSQL's ``reltuples`` this is a statistic, not a promise —
        plans are cached by SQL text, so a plan may carry an estimate taken
        before later DML.  Only heuristics (hash-join build-side choice) may
        depend on it.
        """
        return len(self._store.rows)

    def column_index(self, name: str) -> int:
        try:
            return self.column_names.index(name.lower())
        except ValueError:
            raise CatalogError(f"table {self.name} has no column {name!r}")

    def insert(self, row: Sequence[Value]) -> None:
        row_t = self._prepare_row(row)
        self._store.append(row_t)
        self._version += 1
        for index in self._sorted.values():
            index.insert(row_t)

    def _prepare_row(self, row: Sequence[Value]) -> tuple:
        if len(row) != len(self.column_names):
            raise CatalogError(
                f"table {self.name} has {len(self.column_names)} columns, "
                f"got {len(row)} values")
        return row if type(row) is tuple else tuple(row)

    def equality_index(self, columns: tuple[int, ...]) -> dict:
        """A hash index ``key tuple -> [rows]`` over *columns*.

        Built lazily and invalidated by any DML (cheap version counter);
        NULL keys are excluded, matching SQL's ``col = NULL`` semantics.
        The planner uses these for correlated equality lookups — the moral
        equivalent of the B-tree probes PostgreSQL would use on the paper's
        ``policy`` / ``actions`` / ``cells`` tables.
        """
        cached = self._indexes.get(columns)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        index: dict = {}
        for row in self._store.rows:
            key = tuple(row[c] for c in columns)
            if any(v is None for v in key):
                continue
            index.setdefault(key, []).append(row)
        self._indexes[columns] = (self._version, index)
        return index

    # -- sorted indexes --------------------------------------------------

    def sorted_index(self, columns: Sequence[int],
                     descending: Optional[Sequence[bool]] = None
                     ) -> SortedIndex:
        """The sorted index over *columns* (per-column *descending* flags,
        default all-ascending), built lazily like :meth:`equality_index`
        and then maintained incrementally by every DML method.  Serves
        range probes, ordered delivery (sort elimination) and merge-join
        inputs."""
        key = self._sorted_key(columns, descending)
        index = self._sorted.get(key)
        if index is None:
            index = SortedIndex(key[0], key[1], self._store.rows)
            self._sorted[key] = index
        return index

    def sorted_index_if_exists(self, columns: Sequence[int],
                               descending: Optional[Sequence[bool]] = None
                               ) -> Optional[SortedIndex]:
        return self._sorted.get(self._sorted_key(columns, descending))

    def drop_sorted_index(self, columns: Sequence[int],
                          descending: Optional[Sequence[bool]] = None) -> None:
        self._sorted.pop(self._sorted_key(columns, descending), None)

    def find_ordered_index(self, col_desc: Sequence[tuple[int, bool]]
                           ) -> Optional[tuple[SortedIndex, bool]]:
        """An existing sorted index delivering rows in the order described
        by *col_desc* — a ``(column, descending)`` sequence — as a prefix
        of its key, either scanning forward or fully reversed.  Returns
        ``(index, reverse)`` or None.  The planner's sort-elimination pass
        only consults *existing* indexes: building one on demand would be
        the very sort being eliminated."""
        want_cols = tuple(column for column, _ in col_desc)
        want_desc = tuple(bool(desc) for _, desc in col_desc)
        n = len(col_desc)
        for (cols, desc), index in self._sorted.items():
            if cols[:n] != want_cols:
                continue
            if desc[:n] == want_desc:
                return index, False
            if tuple(not d for d in desc[:n]) == want_desc:
                return index, True
        return None

    @staticmethod
    def _sorted_key(columns: Sequence[int],
                    descending: Optional[Sequence[bool]]
                    ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
        cols = tuple(columns)
        if descending is None:
            return cols, (False,) * len(cols)
        return cols, tuple(bool(d) for d in descending)

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Bulk insert: indexes are maintained once for the whole batch,
        so a large load takes the O(n log n) rebuild path instead of one
        O(n) list shift per row (quadratic).  Every row is validated
        before any is appended — a mid-batch arity error must not leave
        rows in the heap that the indexes never saw."""
        staged = [self._prepare_row(row) for row in rows]
        for row_t in staged:
            self._store.append(row_t)
        if staged:
            self._version += 1
            self._maintain_sorted(added=staged)
        return len(staged)

    def delete_where(self, predicate) -> int:
        """Delete rows for which *predicate(row)* is truthy; return count."""
        kept, dropped = [], []
        for row in self._store.rows:
            (dropped if predicate(row) else kept).append(row)
        self._store.rows = kept
        self._version += 1
        self._maintain_sorted(removed=dropped)
        return len(dropped)

    def update_where(self, predicate, updater) -> int:
        """Replace rows matching *predicate* with *updater(row)*."""
        out = []
        removed, added = [], []
        for row in self._store.rows:
            if predicate(row):
                new_row = tuple(updater(row))
                removed.append(row)
                added.append(new_row)
                out.append(new_row)
            else:
                out.append(row)
        self._store.rows = out
        self._version += 1
        self._maintain_sorted(removed=removed, added=added)
        return len(added)

    def truncate(self) -> None:
        self._store.rows = []
        self._version += 1
        for index in self._sorted.values():
            index.rebuild(())

    def _maintain_sorted(self, removed: Sequence[tuple] = (),
                         added: Sequence[tuple] = ()) -> None:
        """Apply a DML delta to every sorted index; an entry that cannot be
        located degrades to a full rebuild rather than going stale.

        Each point remove/insert pays an O(n) list shift, so a bulk
        UPDATE/DELETE applied row by row would be quadratic; when the
        delta is a sizeable fraction of the index, one O(n log n) rebuild
        is cheaper and is used instead — and an *unpinned* (lazily
        auto-created) index is simply dropped at that point, deferring
        the rebuild to its next probe, which may never come.
        """
        if not self._sorted or not (removed or added):
            return
        delta = len(removed) + len(added)
        dropped: list = []
        for key, index in self._sorted.items():
            if delta > max(16, (len(index) + len(added)) // 8):
                if index.pinned:
                    index.rebuild(self._store.rows)
                else:
                    dropped.append(key)
                continue
            ok = all(index.remove(row) for row in removed)
            if ok:
                for row in added:
                    index.insert(row)
            else:
                index.rebuild(self._store.rows)
        for key in dropped:
            del self._sorted[key]

    def __len__(self) -> int:
        return len(self._store.rows)
