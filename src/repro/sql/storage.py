"""Version-chained heap storage with buffer-page accounting.

Two concerns live here.  First, the PostgreSQL-flavoured buffer model the
paper's Table 2 depends on: every tuple appended to a tracked
:class:`TupleStore` (still used by the recursive-CTE executor) or written
into a :class:`HeapTable` is charged ``ROW_OVERHEAD + sum(value sizes)``
bytes against the :class:`BufferManager`, and a page write is recorded
whenever the byte count crosses an 8 KiB boundary.  With PostgreSQL's
24-byte tuple header and 8192-byte pages this lands within ~1 % of the
paper's absolute counts (see EXPERIMENTS.md).

Second — since the MVCC refactor — multi-version concurrency: a
:class:`HeapTable` stores :class:`~repro.sql.txn.RowVersion` objects, never
mutates one in place, and resolves what a statement sees through the
:class:`~repro.sql.txn.Snapshot` visibility rules:

* INSERT appends a version stamped ``xmin = writer``;
* DELETE stamps ``xmax = writer`` on the visible version;
* UPDATE does both, placing the replacement version immediately after its
  predecessor so sequential scans keep the seed engine's delivery order;
* ROLLBACK undoes stamps through the transaction's undo log
  (:meth:`HeapTable._undo_insert` / :meth:`HeapTable._undo_delete`);
* dead versions are reclaimed by an opportunistic vacuum once no
  transaction is in flight.

Writes outside any transaction (workload loaders, WAL replay calling
``table.insert`` directly) are stamped :data:`~repro.sql.txn.FROZEN_XID`
and are immediately committed for every snapshot, so the pre-MVCC direct
API keeps working unchanged.

Sorted and hash indexes hold *versions*, not row tuples: scans filter
each candidate through the statement snapshot, which is what keeps index
results consistent with sequential scans while writers are in flight.
A per-table visible-rows cache short-circuits the common all-committed
case — it is built and served only under snapshots that provably agree
with it (fresh ``xmax``, no in-progress writers).

Thread-safety audit (wire-server era): nothing in this module locks, by
design.  Every code path that reads or writes heap versions, indexes, or
the ``_vis_cache`` tuple runs inside a statement dispatch, and every
statement dispatch holds ``Database._exec_lock`` (acquired by
``_TxnScope`` and by session activation).  The cache in particular is a
read-modify-write of two attributes (``_vis_cache`` + the rows list); two
unlocked threads could serve a stale tuple built for a dead snapshot.
The execution lock is the single serialization point — do not add
lock-free fast paths here without revisiting that invariant
(``tests/test_server_concurrency.py`` has the regression test).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Iterable, Optional, Sequence

from .errors import CatalogError, SerializationError, TypeError_
from .profiler import SNAPSHOT_SCANS
from .txn import (ABORTED_XID, COMMITTED, FROZEN_XID, RowVersion, Snapshot,
                  TransactionManager)
from .values import Value, _Reversed, key_class, sort_key, value_byte_size

PAGE_SIZE = 8192
ROW_OVERHEAD = 24  # PostgreSQL HeapTupleHeader is 23 bytes + padding


class BufferManager:
    """Counts logical page writes for all tuple stores of a database."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.pages_written = 0
        self.bytes_written = 0

    def charge(self, nbytes: int) -> None:
        """Charge *nbytes* of tuple data; record page writes on boundaries."""
        before = self.bytes_written // self.page_size
        self.bytes_written += nbytes
        after = self.bytes_written // self.page_size
        if after > before:
            self.pages_written += after - before

    def reset(self) -> None:
        self.pages_written = 0
        self.bytes_written = 0

    def snapshot(self) -> tuple[int, int]:
        return self.pages_written, self.bytes_written


def row_byte_size(row: Sequence[Value]) -> int:
    """On-disk size of one tuple under the model above."""
    return ROW_OVERHEAD + sum(value_byte_size(v) for v in row)


class TupleStore:
    """An append-only tuple container that charges a :class:`BufferManager`.

    Used for the recursive-CTE union accumulation (the paper's Table 2
    metric).  Set ``tracked=False`` for purely in-memory intermediates whose
    writes the paper's metric would not see (e.g. the one-row working
    "table" kept by WITH ITERATE).
    """

    def __init__(self, buffers: BufferManager | None, tracked: bool = True):
        self._buffers = buffers
        self._tracked = tracked and buffers is not None
        self.rows: list[tuple[Value, ...]] = []

    def append(self, row: Sequence[Value]) -> None:
        row_t = row if type(row) is tuple else tuple(row)
        self.rows.append(row_t)
        if self._tracked:
            self._buffers.charge(row_byte_size(row_t))

    def extend(self, rows: Iterable[Sequence[Value]]) -> None:
        for row in rows:
            self.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


#: Sort-key prefix of SQL NULL — NULLs sit at the tail of every ascending
#: key column (see :func:`repro.sql.values.sort_key`), so bounded range
#: probes can exclude them with one bisect.
NULL_SORT_KEY = sort_key(None)


class SortedIndex:
    """A bisect-backed ordered access path over one or more columns.

    ``keys`` is a sorted list of per-row key tuples (one
    :func:`~repro.sql.values.sort_key` component per index column, wrapped
    in :class:`~repro.sql.values._Reversed` for DESC columns) and ``rows``
    the parallel list of :class:`~repro.sql.txn.RowVersion` objects.
    Ascending columns therefore deliver NULLS LAST and descending columns
    NULLS FIRST — PostgreSQL's defaults — and a reversed scan of the whole
    structure yields the fully flipped ordering.

    The index holds *every* version, including ones deleted by open or
    committed transactions: scans filter each candidate through their
    snapshot, and vacuum rebuilds the index when dead versions are
    reclaimed.  Maintenance stays incremental on the DML paths: point
    maintenance is O(log n) to locate plus O(n) list shift, against
    O(n log n) for the rebuild that a version-counter invalidation (the
    hash ``equality_index`` strategy) would pay per probe after DML.

    Per-column comparability classes are tracked so range probes can raise
    the same :class:`~repro.sql.errors.TypeError_` a scan-and-compare
    evaluation of the predicate would raise, instead of silently bisecting
    across SQL-incomparable values (see :meth:`check_probe`).
    """

    __slots__ = ("columns", "descending", "keys", "rows", "pinned",
                 "_classes")

    def __init__(self, columns: Sequence[int], descending: Sequence[bool],
                 rows: Iterable[RowVersion] = ()):
        self.columns = tuple(columns)
        self.descending = tuple(bool(d) for d in descending)
        self.keys: list[tuple] = []
        self.rows: list[RowVersion] = []
        #: True for CREATE INDEX declarations: a pinned index survives
        #: bulk DML by rebuilding eagerly; an unpinned (lazily
        #: auto-created) one is dropped instead and rebuilt on its next
        #: probe — if that ever comes.
        self.pinned = False
        #: Per column: comparability class -> [live count, display name].
        self._classes: list[dict] = [dict() for _ in self.columns]
        self.rebuild(rows)

    # -- keys ------------------------------------------------------------

    def key_of(self, version: RowVersion) -> tuple:
        data = version.data
        parts = []
        for column, desc in zip(self.columns, self.descending):
            part = sort_key(data[column])
            parts.append(_Reversed(part) if desc else part)
        return tuple(parts)

    def nonnull_end(self) -> int:
        """Index of the first all-trailing NULL-key row (single ascending
        column only): the exclusive upper bound of ``col > x`` probes."""
        return bisect_left(self.keys, (NULL_SORT_KEY,))

    # -- maintenance -----------------------------------------------------

    def rebuild(self, rows: Iterable[RowVersion]) -> None:
        # One key_of per row: sort decorated pairs on the key alone (ties
        # must not fall through to comparing version objects, which would
        # raise).
        pairs = sorted(((self.key_of(row), row) for row in rows),
                       key=itemgetter(0))
        self.keys = [key for key, _ in pairs]
        self.rows = [row for _, row in pairs]
        for classes in self._classes:
            classes.clear()
        for row in self.rows:
            self._track(row, +1)

    def insert(self, row: RowVersion) -> None:
        key = self.key_of(row)
        pos = bisect_right(self.keys, key)
        self.keys.insert(pos, key)
        self.rows.insert(pos, row)
        self._track(row, +1)

    def remove(self, row: RowVersion) -> bool:
        """Remove the entry for *row*; False when it cannot be located
        (the caller then falls back to a full rebuild)."""
        key = self.key_of(row)
        lo = bisect_left(self.keys, key)
        hi = bisect_right(self.keys, key)
        for pos in range(lo, hi):  # versions are unique objects
            if self.rows[pos] is row:
                return self._delete_at(pos, row)
        return False

    def _delete_at(self, pos: int, row: RowVersion) -> bool:
        del self.keys[pos]
        del self.rows[pos]
        self._track(row, -1)
        return True

    def _track(self, row: RowVersion, delta: int) -> None:
        data = row.data
        for position, column in enumerate(self.columns):
            value = data[column]
            if value is None:
                continue  # NULL never participates in comparisons
            kind = key_class(value)
            entry = self._classes[position].setdefault(
                kind, [0, type(value).__name__])
            entry[0] += delta

    # -- probing ---------------------------------------------------------

    def probe_classes(self, position: int) -> dict:
        """Live comparability classes of key column *position*:
        ``class -> display type name`` (empty = only NULLs / no rows)."""
        return {kind: display
                for kind, (count, display) in self._classes[position].items()
                if count > 0}

    def check_probe(self, position: int, value: Value) -> None:
        """Raise like a scan-and-compare would: a probe value whose class
        differs from any live key value's class is SQL-incomparable."""
        kind = key_class(value)
        for other, display in self.probe_classes(position).items():
            if other != kind:
                raise TypeError_(f"cannot compare {display} with "
                                 f"{type(value).__name__}")

    def range_positions(self, lower, upper) -> tuple[int, int]:
        """``[start, stop)`` positions for a single-ascending-column range.

        *lower* / *upper* are ``(value, inclusive)`` or None for an open
        end.  NULL keys sit past ``nonnull_end()`` and are excluded
        whenever at least one bound is given (``col > x`` is never TRUE
        for NULL).
        """
        start, stop = 0, len(self.keys)
        if upper is not None:
            value, inclusive = upper
            probe = (sort_key(value),)
            stop = (bisect_right(self.keys, probe) if inclusive
                    else bisect_left(self.keys, probe))
        elif lower is not None:
            stop = self.nonnull_end()
        if lower is not None:
            value, inclusive = lower
            probe = (sort_key(value),)
            start = (bisect_left(self.keys, probe) if inclusive
                     else bisect_right(self.keys, probe))
        return start, max(start, stop)

    def __len__(self) -> int:
        return len(self.rows)


class HeapTable:
    """A named base table: column schema plus a version-chained heap."""

    def __init__(self, name: str, column_names: Sequence[str],
                 column_types: Sequence[str],
                 buffers: BufferManager | None = None,
                 txnman: TransactionManager | None = None):
        if len(column_names) != len(column_types):
            raise CatalogError(f"table {name}: column name/type count mismatch")
        if len(set(c.lower() for c in column_names)) != len(column_names):
            raise CatalogError(f"table {name}: duplicate column names")
        self.name = name
        self.column_names = [c.lower() for c in column_names]
        self.column_types = list(column_types)
        self._buffers = buffers
        # A table created outside any Database gets a private manager:
        # with no transaction ever current, every write freezes and every
        # read sees everything — i.e. plain pre-MVCC heap behaviour.
        self._txnman = txnman if txnman is not None else TransactionManager()
        self._versions: list[RowVersion] = []
        self._live = 0            # versions with no deleter (estimate basis)
        self._dead_possible = 0   # stamped xmax / aborted xmin, pre-vacuum
        self._rid_counter = 0     # per-table monotonic row id (WAL identity)
        self._version = 0         # write counter: invalidates caches
        #: (write counter, snapshot xmax, visible row tuples) — see
        #: :meth:`visible_rows` for the exact build/serve conditions.
        self._vis_cache: Optional[tuple[int, int, list]] = None
        self._indexes: dict[tuple[int, ...], tuple[int, dict]] = {}
        #: Sorted indexes, keyed by (column positions, descending flags).
        #: Unlike the version-invalidated hash indexes above, these are
        #: maintained incrementally by every DML method — probing them
        #: never pays a rebuild after DML.
        self._sorted: dict[tuple[tuple[int, ...], tuple[bool, ...]],
                           SortedIndex] = {}

    # -- snapshots & visibility ------------------------------------------

    def current_snapshot(self) -> Snapshot:
        return self._txnman.current_snapshot()

    def all_visible(self, snapshot: Snapshot) -> bool:
        """True when *every* version is visible to *snapshot*, letting
        scans skip the per-row visibility check: no version ever died
        (or vacuum reclaimed the dead), no writer is in flight, and the
        snapshot is current enough to see every committed xid."""
        mgr = self._txnman
        return (self._dead_possible == 0 and not mgr.active_xids
                and snapshot.xmax == mgr.next_xid)

    def visible_rows(self, snapshot: Optional[Snapshot] = None) -> list:
        """Row tuples visible to *snapshot* (default: the current one),
        in heap order.

        The result is cached, but only under conditions that make the
        cache sound for every snapshot it is later served to: it is
        *built* only by a maximally fresh snapshot with no in-progress
        transaction anywhere (so the builder saw the final status of
        every stamped xid), and *served* only while no write has touched
        the table since (write counter), again with no in-progress
        writers, to snapshots at least as fresh as the builder's.
        """
        mgr = self._txnman
        if snapshot is None:
            snapshot = mgr.current_snapshot()
        cache = self._vis_cache
        if (cache is not None and cache[0] == self._version
                and not snapshot.active and not mgr.active_xids
                and snapshot.xmax >= cache[1]):
            return cache[2]
        if mgr.profiler is not None:
            mgr.profiler.bump(SNAPSHOT_SCANS)
        if self.all_visible(snapshot):
            rows = [v.data for v in self._versions]
        else:
            vis = snapshot.visible
            rows = [v.data for v in self._versions if vis(v)]
        if (not snapshot.active and not mgr.active_xids
                and snapshot.xmax == mgr.next_xid):
            self._vis_cache = (self._version, snapshot.xmax, rows)
        return rows

    @property
    def rows(self) -> list[tuple[Value, ...]]:
        return self.visible_rows()

    def estimate_rows(self) -> int:
        """Planner-facing cardinality estimate: the live version count.

        Like PostgreSQL's ``reltuples`` this is a statistic, not a promise —
        plans are cached by SQL text, so a plan may carry an estimate taken
        before later DML.  Only heuristics (hash-join build-side choice) may
        depend on it.
        """
        return self._live

    def column_index(self, name: str) -> int:
        try:
            return self.column_names.index(name.lower())
        except ValueError:
            raise CatalogError(f"table {self.name} has no column {name!r}")

    # -- writes ----------------------------------------------------------

    def _prepare_row(self, row: Sequence[Value]) -> tuple:
        if len(row) != len(self.column_names):
            raise CatalogError(
                f"table {self.name} has {len(self.column_names)} columns, "
                f"got {len(row)} values")
        return row if type(row) is tuple else tuple(row)

    def _new_version(self, data: tuple, txn) -> RowVersion:
        """Create and account one version (caller places it and maintains
        the sorted indexes — insert appends, update splices)."""
        self._rid_counter += 1
        if txn is not None:
            xid = txn.ensure_xid()
            version = RowVersion(data, xid, txn.cid, self._rid_counter)
            txn.undo.append(("ins", self, version))
            txn.tables_touched.add(self)
            if self._txnman.wal is not None:
                txn.wal_buf.append(self._txnman.wal.insert_record(
                    xid, self.name, version.rid, data))
        else:
            version = RowVersion(data, FROZEN_XID, 0, self._rid_counter)
        self._live += 1
        self._version += 1
        if self._buffers is not None:
            self._buffers.charge(row_byte_size(data))
        return version

    def insert(self, row: Sequence[Value]) -> None:
        row_t = self._prepare_row(row)
        version = self._new_version(row_t, self._txnman.current)
        self._versions.append(version)
        for index in self._sorted.values():
            index.insert(version)

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Bulk insert: indexes are maintained once for the whole batch,
        so a large load takes the O(n log n) rebuild path instead of one
        O(n) list shift per row (quadratic).  Every row is validated
        before any is appended — a mid-batch arity error must not leave
        rows in the heap that the indexes never saw."""
        staged = [self._prepare_row(row) for row in rows]
        if not staged:
            return 0
        txn = self._txnman.current
        versions = [self._new_version(row_t, txn) for row_t in staged]
        self._versions.extend(versions)
        self._maintain_sorted(added=versions)
        return len(staged)

    def _stamp_delete(self, version: RowVersion, txn) -> None:
        """Mark *version* deleted by *txn* (or frozen-deleted), enforcing
        first-writer-wins: a version some other transaction already
        stamped — still in progress, or committed after our snapshot
        (it must have, or the version would not have been visible to
        us) — raises :class:`SerializationError`."""
        old_xmax = version.xmax
        mgr = self._txnman
        if old_xmax is not None and (txn is None or old_xmax != txn.xid):
            if old_xmax in mgr.active_xids:
                raise SerializationError(
                    f"could not serialize access to table {self.name}: "
                    f"row updated by concurrent transaction {old_xmax}")
            if old_xmax == FROZEN_XID or mgr.statuses.get(old_xmax) == COMMITTED:
                raise SerializationError(
                    f"could not serialize access to table {self.name}: "
                    f"row updated by transaction {old_xmax}, which "
                    f"committed after this snapshot")
            # Aborted leftover stamp: safe to overwrite.
        if txn is not None:
            xid = txn.ensure_xid()
            txn.undo.append(("del", self, version, old_xmax, version.cmax))
            version.xmax = xid
            version.cmax = txn.cid
            txn.tables_touched.add(self)
            if mgr.wal is not None:
                txn.wal_buf.append(mgr.wal.delete_record(
                    xid, self.name, version.rid))
        else:
            version.xmax = FROZEN_XID
            version.cmax = 0
        if old_xmax is None:
            self._live -= 1
        self._dead_possible += 1
        self._version += 1

    def delete_where(self, predicate) -> int:
        """Delete rows for which *predicate(row)* is truthy; return count."""
        mgr = self._txnman
        txn = mgr.current
        snapshot = mgr.current_snapshot()
        if self.all_visible(snapshot):
            targets = [v for v in self._versions if predicate(v.data)]
        else:
            vis = snapshot.visible
            targets = [v for v in self._versions
                       if vis(v) and predicate(v.data)]
        for version in targets:
            self._stamp_delete(version, txn)
        if txn is None and targets:
            self.maybe_vacuum()
        return len(targets)

    def update_where(self, predicate, updater) -> int:
        """Replace rows matching *predicate* with *updater(row)*.

        MVCC-style: the old version gets ``xmax`` stamped, the new one is
        spliced in right after it so sequential scans deliver the updated
        row where the original sat (the seed engine's in-place order).
        All replacement tuples are computed before anything is stamped,
        so an updater error leaves the heap untouched.
        """
        mgr = self._txnman
        txn = mgr.current
        snapshot = mgr.current_snapshot()
        vis = None if self.all_visible(snapshot) else snapshot.visible
        targets = []
        for version in self._versions:
            if (vis is None or vis(version)) and predicate(version.data):
                targets.append(
                    (version, self._prepare_row(tuple(updater(version.data)))))
        if not targets:
            return 0
        for version, _ in targets:
            self._stamp_delete(version, txn)
        replacement = {id(version): data for version, data in targets}
        out = []
        added = []
        for version in self._versions:
            out.append(version)
            data = replacement.get(id(version))
            if data is not None:
                new_version = self._new_version(data, txn)
                out.append(new_version)
                added.append(new_version)
        self._versions = out
        self._maintain_sorted(added=added)
        if txn is None:
            self.maybe_vacuum()
        return len(targets)

    def truncate(self) -> None:
        """Drop every version unconditionally (non-transactional reset)."""
        self._versions = []
        self._live = 0
        self._dead_possible = 0
        self._version += 1
        self._vis_cache = None
        for index in self._sorted.values():
            index.rebuild(())

    # -- undo (called by Transaction.rollback_to_mark) -------------------

    def _undo_insert(self, version: RowVersion) -> None:
        version.xmin = ABORTED_XID
        if version.xmax is None:
            self._live -= 1
        self._dead_possible += 1
        self._version += 1

    def _undo_delete(self, version: RowVersion, old_xmax, old_cmax) -> None:
        version.xmax = old_xmax
        version.cmax = old_cmax
        if old_xmax is None:
            self._live += 1
        self._dead_possible -= 1
        self._version += 1

    # -- vacuum ----------------------------------------------------------

    def maybe_vacuum(self) -> None:
        """Reclaim dead versions when enough have piled up.

        Only safe — and only attempted — while no transaction is open
        anywhere (no snapshot can be holding a view that still sees a
        dead version).  The threshold keeps insert-only workloads from
        paying any vacuum cost and amortises the O(n) sweep.
        """
        mgr = self._txnman
        if mgr.open_count or mgr.active_xids:
            return
        if self._dead_possible <= max(16, len(self._versions) // 8):
            return
        status = mgr.statuses
        live = []
        for version in self._versions:
            xmin = version.xmin
            if xmin != FROZEN_XID and status.get(xmin) != COMMITTED:
                continue  # inserter aborted: dead to everyone
            xmax = version.xmax
            if xmax is not None and (xmax == FROZEN_XID
                                     or status.get(xmax) == COMMITTED):
                continue  # deleter committed: dead to every new snapshot
            live.append(version)
        if len(live) != len(self._versions):
            self._versions = live
            self._version += 1
            for index in self._sorted.values():
                index.rebuild(live)
        self._dead_possible = sum(1 for v in live if v.xmax is not None)
        self._live = len(live) - self._dead_possible

    # -- hash indexes ----------------------------------------------------

    def equality_index(self, columns: tuple[int, ...]) -> dict:
        """A hash index ``key tuple -> [versions]`` over *columns*.

        Built lazily over every version (snapshot-independent — scans
        filter hits through their own snapshot) and invalidated by any
        write (cheap counter); NULL keys are excluded, matching SQL's
        ``col = NULL`` semantics.  The planner uses these for correlated
        equality lookups — the moral equivalent of the B-tree probes
        PostgreSQL would use on the paper's ``policy`` / ``actions`` /
        ``cells`` tables.
        """
        cached = self._indexes.get(columns)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        index: dict = {}
        for version in self._versions:
            data = version.data
            key = tuple(data[c] for c in columns)
            if any(v is None for v in key):
                continue
            index.setdefault(key, []).append(version)
        self._indexes[columns] = (self._version, index)
        return index

    # -- sorted indexes --------------------------------------------------

    def sorted_index(self, columns: Sequence[int],
                     descending: Optional[Sequence[bool]] = None
                     ) -> SortedIndex:
        """The sorted index over *columns* (per-column *descending* flags,
        default all-ascending), built lazily like :meth:`equality_index`
        and then maintained incrementally by every DML method.  Serves
        range probes, ordered delivery (sort elimination) and merge-join
        inputs."""
        key = self._sorted_key(columns, descending)
        index = self._sorted.get(key)
        if index is None:
            index = SortedIndex(key[0], key[1], self._versions)
            self._sorted[key] = index
        return index

    def sorted_index_if_exists(self, columns: Sequence[int],
                               descending: Optional[Sequence[bool]] = None
                               ) -> Optional[SortedIndex]:
        return self._sorted.get(self._sorted_key(columns, descending))

    def drop_sorted_index(self, columns: Sequence[int],
                          descending: Optional[Sequence[bool]] = None) -> None:
        self._sorted.pop(self._sorted_key(columns, descending), None)

    def find_ordered_index(self, col_desc: Sequence[tuple[int, bool]]
                           ) -> Optional[tuple[SortedIndex, bool]]:
        """An existing sorted index delivering rows in the order described
        by *col_desc* — a ``(column, descending)`` sequence — as a prefix
        of its key, either scanning forward or fully reversed.  Returns
        ``(index, reverse)`` or None.  The planner's sort-elimination pass
        only consults *existing* indexes: building one on demand would be
        the very sort being eliminated."""
        want_cols = tuple(column for column, _ in col_desc)
        want_desc = tuple(bool(desc) for _, desc in col_desc)
        n = len(col_desc)
        for (cols, desc), index in self._sorted.items():
            if cols[:n] != want_cols:
                continue
            if desc[:n] == want_desc:
                return index, False
            if tuple(not d for d in desc[:n]) == want_desc:
                return index, True
        return None

    @staticmethod
    def _sorted_key(columns: Sequence[int],
                    descending: Optional[Sequence[bool]]
                    ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
        cols = tuple(columns)
        if descending is None:
            return cols, (False,) * len(cols)
        return cols, tuple(bool(d) for d in descending)

    def _maintain_sorted(self, removed: Sequence[RowVersion] = (),
                         added: Sequence[RowVersion] = ()) -> None:
        """Apply a write delta to every sorted index; an entry that cannot
        be located degrades to a full rebuild rather than going stale.

        Each point remove/insert pays an O(n) list shift, so a bulk
        change applied row by row would be quadratic; when the delta is a
        sizeable fraction of the index, one O(n log n) rebuild is cheaper
        and is used instead — and an *unpinned* (lazily auto-created)
        index is simply dropped at that point, deferring the rebuild to
        its next probe, which may never come.
        """
        if not self._sorted or not (removed or added):
            return
        delta = len(removed) + len(added)
        dropped: list = []
        for key, index in self._sorted.items():
            if delta > max(16, (len(index) + len(added)) // 8):
                if index.pinned:
                    index.rebuild(self._versions)
                else:
                    dropped.append(key)
                continue
            ok = all(index.remove(row) for row in removed)
            if ok:
                for row in added:
                    index.insert(row)
            else:
                index.rebuild(self._versions)
        for key in dropped:
            del self._sorted[key]

    def __len__(self) -> int:
        return self._live
