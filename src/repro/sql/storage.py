"""Heap storage with a PostgreSQL-flavoured buffer-page accounting model.

The paper's Table 2 counts *buffer page writes* performed while evaluating
``parse()`` as a recursive CTE: vanilla ``WITH RECURSIVE`` materialises the
whole trace of function activations (quadratic bytes for an argument that
shrinks by one character per step), while ``WITH ITERATE`` keeps only the
latest activation and writes nothing.

We reproduce that metric with :class:`BufferManager`: every tuple appended to
a tracked :class:`TupleStore` is charged ``ROW_OVERHEAD + sum(value sizes)``
bytes, and a page write is recorded whenever the accumulated byte count
crosses an 8 KiB page boundary.  With PostgreSQL's 24-byte tuple header and
8192-byte pages this model lands within ~1 % of the paper's absolute counts
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .errors import CatalogError
from .values import Value, value_byte_size

PAGE_SIZE = 8192
ROW_OVERHEAD = 24  # PostgreSQL HeapTupleHeader is 23 bytes + padding


class BufferManager:
    """Counts logical page writes for all tuple stores of a database."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.pages_written = 0
        self.bytes_written = 0

    def charge(self, nbytes: int) -> None:
        """Charge *nbytes* of tuple data; record page writes on boundaries."""
        before = self.bytes_written // self.page_size
        self.bytes_written += nbytes
        after = self.bytes_written // self.page_size
        if after > before:
            self.pages_written += after - before

    def reset(self) -> None:
        self.pages_written = 0
        self.bytes_written = 0

    def snapshot(self) -> tuple[int, int]:
        return self.pages_written, self.bytes_written


def row_byte_size(row: Sequence[Value]) -> int:
    """On-disk size of one tuple under the model above."""
    return ROW_OVERHEAD + sum(value_byte_size(v) for v in row)


class TupleStore:
    """An append-only tuple container that charges a :class:`BufferManager`.

    Used for base-table heaps and for the recursive-CTE union accumulation.
    Set ``tracked=False`` for purely in-memory intermediates whose writes the
    paper's metric would not see (e.g. the one-row working "table" kept by
    WITH ITERATE).
    """

    def __init__(self, buffers: BufferManager | None, tracked: bool = True):
        self._buffers = buffers
        self._tracked = tracked and buffers is not None
        self.rows: list[tuple[Value, ...]] = []

    def append(self, row: Sequence[Value]) -> None:
        row_t = row if type(row) is tuple else tuple(row)
        self.rows.append(row_t)
        if self._tracked:
            self._buffers.charge(row_byte_size(row_t))

    def extend(self, rows: Iterable[Sequence[Value]]) -> None:
        for row in rows:
            self.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class HeapTable:
    """A named base table: column schema plus a tuple store."""

    def __init__(self, name: str, column_names: Sequence[str],
                 column_types: Sequence[str], buffers: BufferManager | None = None):
        if len(column_names) != len(column_types):
            raise CatalogError(f"table {name}: column name/type count mismatch")
        if len(set(c.lower() for c in column_names)) != len(column_names):
            raise CatalogError(f"table {name}: duplicate column names")
        self.name = name
        self.column_names = [c.lower() for c in column_names]
        self.column_types = list(column_types)
        self._store = TupleStore(buffers, tracked=True)
        self._version = 0
        self._indexes: dict[tuple[int, ...], tuple[int, dict]] = {}

    @property
    def rows(self) -> list[tuple[Value, ...]]:
        return self._store.rows

    def estimate_rows(self) -> int:
        """Planner-facing cardinality estimate: the current heap row count.

        Like PostgreSQL's ``reltuples`` this is a statistic, not a promise —
        plans are cached by SQL text, so a plan may carry an estimate taken
        before later DML.  Only heuristics (hash-join build-side choice) may
        depend on it.
        """
        return len(self._store.rows)

    def column_index(self, name: str) -> int:
        try:
            return self.column_names.index(name.lower())
        except ValueError:
            raise CatalogError(f"table {self.name} has no column {name!r}")

    def insert(self, row: Sequence[Value]) -> None:
        if len(row) != len(self.column_names):
            raise CatalogError(
                f"table {self.name} has {len(self.column_names)} columns, "
                f"got {len(row)} values")
        self._store.append(row)
        self._version += 1

    def equality_index(self, columns: tuple[int, ...]) -> dict:
        """A hash index ``key tuple -> [rows]`` over *columns*.

        Built lazily and invalidated by any DML (cheap version counter);
        NULL keys are excluded, matching SQL's ``col = NULL`` semantics.
        The planner uses these for correlated equality lookups — the moral
        equivalent of the B-tree probes PostgreSQL would use on the paper's
        ``policy`` / ``actions`` / ``cells`` tables.
        """
        cached = self._indexes.get(columns)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        index: dict = {}
        for row in self._store.rows:
            key = tuple(row[c] for c in columns)
            if any(v is None for v in key):
                continue
            index.setdefault(key, []).append(row)
        self._indexes[columns] = (self._version, index)
        return index

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate) -> int:
        """Delete rows for which *predicate(row)* is truthy; return count."""
        kept = [r for r in self._store.rows if not predicate(r)]
        deleted = len(self._store.rows) - len(kept)
        self._store.rows = kept
        self._version += 1
        return deleted

    def update_where(self, predicate, updater) -> int:
        """Replace rows matching *predicate* with *updater(row)*."""
        count = 0
        out = []
        for row in self._store.rows:
            if predicate(row):
                out.append(tuple(updater(row)))
                count += 1
            else:
                out.append(row)
        self._store.rows = out
        self._version += 1
        return count

    def truncate(self) -> None:
        self._store.rows = []
        self._version += 1

    def __len__(self) -> int:
        return len(self._store.rows)
