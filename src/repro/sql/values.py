"""The SQL value domain and its three-valued-logic operations.

Values are represented by plain Python objects:

========  ==============================
SQL       Python
========  ==============================
NULL      ``None``
boolean   ``bool``
int       ``int``
float     ``float``
text      ``str``
array     ``list``
row       :class:`Row`
========  ==============================

All comparison helpers in this module implement SQL semantics: any comparison
involving NULL yields NULL (``None``), and the boolean connectives follow
Kleene three-valued logic.  :func:`sort_key` provides a total order used by
ORDER BY / window frames, where NULL sorts last (PostgreSQL's default of
``NULLS LAST`` for ascending order).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .errors import ExecutionError, TypeError_

Value = Any  # NULL | bool | int | float | str | list | Row


class Row:
    """A composite (record) value, e.g. the paper's ``coord`` type.

    A row holds an ordered tuple of field values and, optionally, the field
    names of its declared composite type.  Rows compare field-by-field, which
    is what makes predicates such as ``location = p.loc`` in the paper's
    ``walk()`` function work.
    """

    __slots__ = ("values", "names", "type_name")

    def __init__(self, values: Sequence[Value], names: Sequence[str] | None = None,
                 type_name: str | None = None):
        self.values = tuple(values)
        self.names = tuple(names) if names is not None else None
        self.type_name = type_name
        if self.names is not None and len(self.names) != len(self.values):
            raise TypeError_(
                f"row has {len(self.values)} fields but {len(self.names)} names")

    def field(self, name: str) -> Value:
        """Return the value of field *name* (case-insensitive)."""
        if self.names is None:
            raise ExecutionError(f"row value has no named fields (wanted {name!r})")
        lowered = name.lower()
        for field_name, value in zip(self.names, self.values):
            if field_name.lower() == lowered:
                return value
        raise ExecutionError(f"row value has no field {name!r}; has {self.names}")

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index: int) -> Value:
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"({inner})"


def is_null(value: Value) -> bool:
    """True when *value* is SQL NULL."""
    return value is None


def comparison_class(value: Value) -> str:
    """SQL comparability class: values compare only within one class.

    bool is an int subclass in Python but a distinct SQL type; all numerics
    share one class; everything else classes by Python type.  Shared by
    ``_comparable`` and the hash-join key type check
    (:mod:`repro.sql.executor.hashjoin`), so the two join strategies raise
    on exactly the same operand combinations.
    """
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, Row):
        return "row"
    if isinstance(value, list):
        return "arr"
    return type(value).__name__


def key_class(value: Value):
    """Comparability class of an index/join-key value.

    Index lookups on incomparable types would silently find nothing where a
    scan-and-compare raises; recording each key's class at build time lets
    probes raise the same type error instead.  Refines
    :func:`comparison_class` in one way: rows class by arity, since
    :func:`compare` rejects rows of different arity too.  Shared by the
    hash-join build table and :class:`repro.sql.storage.SortedIndex`.
    """
    kind = comparison_class(value)
    if kind == "row":
        return ("row", len(value))
    return kind


def _comparable(a: Value, b: Value) -> None:
    """Raise unless *a* and *b* belong to mutually comparable SQL types."""
    if comparison_class(a) != comparison_class(b):
        raise TypeError_(f"cannot compare {type(a).__name__} with {type(b).__name__}")


def compare(a: Value, b: Value) -> int | None:
    """Three-valued comparison: -1 / 0 / +1, or None when either side is NULL.

    Rows compare lexicographically field by field; a NULL field makes the
    whole comparison NULL unless an earlier field already decided it.
    """
    if type(a) is int and type(b) is int:
        # Exact-int fast path (``type() is`` excludes bool): the dominant
        # case in machine-state inner loops, where the generic class checks
        # below would double the cost of every comparison.
        return (a > b) - (a < b)
    if a is None or b is None:
        return None
    if isinstance(a, Row) and isinstance(b, Row):
        if len(a) != len(b):
            raise TypeError_("cannot compare rows of different arity")
        for fa, fb in zip(a, b):
            part = compare(fa, fb)
            if part is None:
                return None
            if part != 0:
                return part
        return 0
    if isinstance(a, list) and isinstance(b, list):
        for fa, fb in zip(a, b):
            part = compare(fa, fb)
            if part is None:
                return None
            if part != 0:
                return part
        return (len(a) > len(b)) - (len(a) < len(b))
    _comparable(a, b)
    # IEEE NaN breaks trichotomy (every ordered comparison is False, which
    # would make NaN compare equal to everything below).  PostgreSQL orders
    # float NaN equal to itself and greater than every other number.
    a_nan = isinstance(a, float) and a != a
    b_nan = isinstance(b, float) and b != b
    if a_nan or b_nan:
        if a_nan and b_nan:
            return 0
        return 1 if a_nan else -1
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def sql_eq(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c == 0


def sql_ne(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c != 0


def sql_lt(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c < 0


def sql_le(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c <= 0


def sql_gt(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c > 0


def sql_ge(a: Value, b: Value) -> bool | None:
    c = compare(a, b)
    return None if c is None else c >= 0


def sql_and(a: bool | None, b: bool | None) -> bool | None:
    """Kleene AND: false dominates NULL."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: bool | None, b: bool | None) -> bool | None:
    """Kleene OR: true dominates NULL."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: bool | None) -> bool | None:
    return None if a is None else not a


_SORT_RANK = {bool: 0, int: 1, float: 1, str: 2, list: 3, Row: 4}


def sort_key(value: Value):
    """A total-order key: NULLs sort last, then by value within a type."""
    if value is None:
        return (1, 0, 0)
    if isinstance(value, Row):
        return (0, 4, tuple(sort_key(v) for v in value))
    if isinstance(value, list):
        return (0, 3, tuple(sort_key(v) for v in value))
    if isinstance(value, bool):
        return (0, 0, value)
    if isinstance(value, float) and value != value:
        # IEEE NaN breaks trichotomy (every ordered comparison is False),
        # which would leave sorted structures — ORDER BY output, the
        # bisect invariant of SortedIndex — silently inconsistent.  Mirror
        # compare(): all NaNs are one equality class, greater than every
        # other number (1.5 slots after the numeric rank, before text).
        return (0, 1.5, 0)
    return (0, _SORT_RANK[type(value)], value)


def row_sort_key(values: Iterable[Value], descending: Sequence[bool]):
    """Sort key for a tuple of ORDER BY expressions with per-key direction.

    Descending keys are realised by wrapping in :class:`_Reversed`; NULLs keep
    sorting last for ascending keys and first for descending keys, matching
    PostgreSQL defaults.
    """
    out = []
    for value, desc in zip(values, descending):
        key = sort_key(value)
        out.append(_Reversed(key) if desc else key)
    return tuple(out)


class _Reversed:
    """Wrapper inverting the order of an arbitrary key (for DESC sorts)."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)


def value_byte_size(value: Value) -> int:
    """Approximate on-disk size of a value, PostgreSQL-flavoured.

    Used by the buffer-page model behind Table 2.  Sizes follow PostgreSQL's
    storage: 1 byte for bool, 8 for ints/floats (we store bigint/double
    precision), ``1 + len`` for short text (varlena header), 4 bytes per NULL
    bitmap entry approximated as 0 here (the per-row header is charged by the
    storage layer, not per value).
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        # Char count approximates byte count (exact for ASCII); computing
        # the true UTF-8 length would make accounting O(len) per append.
        return 1 + len(value)
    if isinstance(value, list):
        return 24 + sum(value_byte_size(v) for v in value)
    if isinstance(value, Row):
        return 24 + sum(value_byte_size(v) for v in value)
    raise TypeError_(f"unsized value type: {type(value).__name__}")


def render_value(value: Value) -> str:
    """Render a value the way psql would (approximately)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, Row):
        return "(" + ",".join(render_value(v) for v in value) + ")"
    if isinstance(value, list):
        return "{" + ",".join(render_value(v) for v in value) + "}"
    return str(value)


def hashable_value(value: Value):
    """A hashable stand-in for *value* preserving SQL equality classes.

    Used wherever values become dict/set keys — DISTINCT, GROUP BY, and the
    hash-join build table — so composite ROWs and arrays (unhashable as
    Python objects) hash by content, and booleans never collide with the
    integers they equal in Python.
    """
    if isinstance(value, Row):
        return ("row",) + tuple(hashable_value(v) for v in value)
    if isinstance(value, list):
        return ("arr",) + tuple(hashable_value(v) for v in value)
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, float) and value != value:
        # All NaNs are one equality class (see compare()); Python's
        # NaN != NaN would otherwise split them across dict keys.
        return ("nan",)
    return value


def hashable_row(row) -> tuple:
    return tuple(hashable_value(v) for v in row)
