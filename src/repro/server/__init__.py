"""Wire-protocol service surface: asyncio server + blocking client.

The engine stops being embedded-only here: :class:`SqlServer` speaks a
PostgreSQL simple-protocol subset and maps each TCP connection onto a
:meth:`repro.sql.engine.Database.connect` session.  See
ARCHITECTURE.md's "Service surface" section for the protocol table, the
threading model and the telemetry glossary.

Run one from the command line::

    PYTHONPATH=src python -m repro.server --port 5433 --demo

or host one in-process (tests, benchmarks, notebooks)::

    from repro.sql import Database
    from repro.server import ServerThread, connect

    db = Database()
    with ServerThread(db) as (host, port):
        with connect(host, port) as client:
            client.query("SELECT 1 AS one")
"""

from .client import ServerError, StatementResult, WireClient, connect
from .server import ServerThread, SqlServer

__all__ = ["SqlServer", "ServerThread", "WireClient", "connect",
           "ServerError", "StatementResult"]
