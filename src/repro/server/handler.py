"""Query handling for one wire session — runs on executor worker threads.

:func:`run_script` is the bridge between a ``Query`` message and the
engine: it parses the SQL into statements, dispatches each one in the
connection's session (under the database execution lock, via session
activation), and renders the outcome into wire-neutral output records the
async layer encodes without touching the engine:

* ``("rows", columns, rendered_rows, tag)`` — RowDescription + DataRows
  + CommandComplete,
* ``("complete", tag)`` — CommandComplete only (DML / DDL / session),
* ``("notice", message)`` — one NoticeResponse,
* ``("error", sqlstate, message)`` — ErrorResponse (ends the script),
* ``("empty",)`` — EmptyQueryResponse.

Multi-statement ``Query`` scripts run sequentially and stop at the first
error.  (PostgreSQL additionally wraps such scripts in an implicit
transaction; this engine's autocommit statements commit individually — a
documented divergence, see ARCHITECTURE.md.)

Everything here happens off the event loop; the per-statement engine work
serializes on ``Database._exec_lock`` while parse and row rendering run
outside it, so concurrent sessions overlap their non-engine CPU.
"""

from __future__ import annotations

import re
import time
from typing import TYPE_CHECKING, Optional

from ..sql import ast as A
from ..sql.engine import COUNT, ROWS
from ..sql.errors import SqlError
from ..sql.parser import parse_script
from ..sql.profiler import (SERVER_ERRORS, SERVER_QUERIES,
                            SERVER_SLOW_QUERIES)
from .protocol import render_row, sqlstate_for

if TYPE_CHECKING:  # pragma: no cover
    from ..sql.session import Connection
    from .telemetry import Telemetry

#: AST class -> fixed CommandComplete tag.  Row-producing and
#: count-producing statements are tagged dynamically below.
_FIXED_TAGS = {
    A.BeginStmt: "BEGIN",
    A.CommitStmt: "COMMIT",
    A.RollbackStmt: "ROLLBACK",
    A.SavepointStmt: "SAVEPOINT",
    A.ReleaseStmt: "RELEASE",
    A.CreateTable: "CREATE TABLE",
    A.CreateType: "CREATE TYPE",
    A.CreateFunction: "CREATE FUNCTION",
    A.CreateIndex: "CREATE INDEX",
    A.DropTable: "DROP TABLE",
    A.DropIndex: "DROP INDEX",
    A.DropFunction: "DROP FUNCTION",
    A.SetStmt: "SET",
    A.ResetStmt: "RESET",
    A.ShowStmt: "SHOW",
    A.ExplainStmt: "EXPLAIN",
    A.PrepareStmt: "PREPARE",
    A.DeallocateStmt: "DEALLOCATE",
    A.CheckpointStmt: "CHECKPOINT",
}

_DML_TAGS = {
    A.Insert: "INSERT 0 {n}",
    A.Update: "UPDATE {n}",
    A.Delete: "DELETE {n}",
}


def command_tag(stmt, kind: str, result, session: "Connection") -> str:
    """The CommandComplete tag for one executed statement."""
    template = _DML_TAGS.get(type(stmt))
    if template is not None:
        n = result.rows[0][0] if result.rows else 0
        return template.format(n=n)
    tag = _FIXED_TAGS.get(type(stmt))
    if tag is not None:
        return tag
    if isinstance(stmt, A.ExecuteStmt):
        # Tag by the prepared statement's underlying kind, like PostgreSQL.
        try:
            underlying = session.lookup_prepared(stmt.name).statement
        except SqlError:
            underlying = None
        template = _DML_TAGS.get(type(underlying))
        if template is not None and kind == COUNT:
            n = result.rows[0][0] if result.rows else 0
            return template.format(n=n)
    if kind == ROWS:
        return f"SELECT {len(result.rows)}"
    if kind == COUNT:
        n = result.rows[0][0] if result.rows else 0
        return f"SELECT {n}"
    return "OK"


#: Fast path for the hottest wire shape: ``EXECUTE name(literal, ...)``.
#: The simple protocol has no Parse/Bind/Execute phase, so a prepared
#: point query arrives as text on every round trip — a full parse of
#: that text costs more than running the (handle-cached) plan.  A
#: micro-parser recognizes the shape and binds literal arguments
#: directly; anything it doesn't recognize falls back to the real
#: parser, so this is an optimization, never a semantic fork.
_FAST_EXECUTE = re.compile(
    r"^\s*EXECUTE\s+([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()';]*)\)\s*;?\s*$",
    re.IGNORECASE)
_INT = re.compile(r"^-?\d+$")
_FLOAT = re.compile(r"^-?\d+\.\d+$")

_KEYWORD_ARGS = {"null": None, "true": True, "false": False}


def _parse_literal_args(argstr: str) -> Optional[list]:
    """Literal EXECUTE arguments, or None when beyond the micro-parser."""
    args: list = []
    argstr = argstr.strip()
    if not argstr:
        return args
    for token in argstr.split(","):
        token = token.strip()
        if _INT.match(token):
            args.append(int(token))
        elif _FLOAT.match(token):
            args.append(float(token))
        elif token.lower() in _KEYWORD_ARGS:
            args.append(_KEYWORD_ARGS[token.lower()])
        else:
            return None
    return args


def _fast_execute(session: "Connection", sql: str):
    """Run ``EXECUTE name(literals)`` without the full parser; returns
    ``(outputs, error)`` or None when the shape doesn't match (the
    caller falls back)."""
    match = _FAST_EXECUTE.match(sql)
    if match is None:
        return None
    args = _parse_literal_args(match.group(2))
    if args is None:
        return None
    notices_before = len(session.notices)
    try:
        with session._activated():
            handle = session.lookup_prepared(match.group(1))
            kind, result = handle.dispatch(tuple(args))
    except Exception as exc:
        outputs = [("notice", m)
                   for m in session.notices[notices_before:]]
        message = str(exc) if isinstance(exc, SqlError) \
            else f"{type(exc).__name__}: {exc}"
        outputs.append(("error", sqlstate_for(exc), message))
        return outputs, exc
    template = _DML_TAGS.get(type(handle.statement))
    if template is not None and kind == COUNT:
        tag = template.format(
            n=result.rows[0][0] if result.rows else 0)
    else:
        tag = f"SELECT {len(result.rows)}"
    outputs = [("notice", m) for m in session.notices[notices_before:]]
    if kind == ROWS:
        outputs.append(("rows", list(result.columns),
                        [render_row(row) for row in result.rows], tag))
    else:
        outputs.append(("complete", tag))
    return outputs, None


def run_script(session: "Connection", sql: str,
               telemetry: "Telemetry") -> list[tuple]:
    """Execute one ``Query`` payload; returns wire-neutral output records."""
    db = session.db
    profiler = db.profiler
    started = time.perf_counter()
    fast = _fast_execute(session, sql)
    if fast is not None:
        outputs, error = fast
        return _account(profiler, telemetry, sql, started, error, outputs)
    outputs = []
    error = None
    try:
        statements = parse_script(sql)
    except SqlError as exc:
        error = exc
        outputs.append(("error", sqlstate_for(exc), str(exc)))
        statements = []
    except Exception as exc:  # lexer crash — still answer the client
        error = exc
        outputs.append(("error", sqlstate_for(exc),
                        f"{type(exc).__name__}: {exc}"))
        statements = []
    if error is None and not statements:
        outputs.append(("empty",))
    for stmt in statements:
        notices_before = len(session.notices)
        try:
            with session._activated():
                # Only the dispatch holds the engine lock; tag
                # derivation and row rendering happen outside it so
                # concurrent sessions overlap their non-engine CPU.
                kind, result = db._dispatch_ast(stmt, (), session)
        except Exception as exc:
            error = exc
            for message in session.notices[notices_before:]:
                outputs.append(("notice", message))
            message = str(exc) if isinstance(exc, SqlError) \
                else f"{type(exc).__name__}: {exc}"
            outputs.append(("error", sqlstate_for(exc), message))
            break
        tag = command_tag(stmt, kind, result, session)
        for message in session.notices[notices_before:]:
            outputs.append(("notice", message))
        if kind == ROWS:
            outputs.append(("rows", list(result.columns),
                            [render_row(row) for row in result.rows], tag))
        else:
            outputs.append(("complete", tag))
    return _account(profiler, telemetry, sql, started, error, outputs)


def _account(profiler, telemetry: "Telemetry", sql: str, started: float,
             error, outputs: list[tuple]) -> list[tuple]:
    elapsed = time.perf_counter() - started
    profiler.bump(SERVER_QUERIES)
    if error is not None:
        profiler.bump(SERVER_ERRORS)
    if telemetry.record(sql, elapsed, error=error):
        profiler.bump(SERVER_SLOW_QUERIES)
    return outputs
