"""Production telemetry for the wire server.

Three instruments, all fed from executor worker threads (hence the lock):

* a **latency histogram** with logarithmic buckets (powers of two in
  microseconds) plus exact count/sum, supporting percentile estimates;
* a **slow-query log** — a bounded ring of ``(timestamp, elapsed, sql)``
  records for queries over the configurable threshold;
* a **stats renderer** that flattens the histogram, the slow-query log
  and the database profiler's counters (``SERVER_*`` and engine counters
  alike) into ``name value`` lines — the payload of the line-based
  ``STATS`` endpoint, served without touching the engine.

The profiler remains the single source of truth for event *counts*
(:mod:`repro.sql.profiler` grew ``SERVER_*`` counters and a counter
lock); this module owns only the timing distribution and the slow-query
evidence, which have no place in the engine's cost taxonomy.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

#: Histogram buckets: upper bounds in seconds, 1us .. ~67s as powers of 2,
#: with a catch-all +Inf bucket at the end.
_BUCKET_BOUNDS = tuple((2 ** i) * 1e-6 for i in range(27))


class LatencyHistogram:
    """Log-bucketed latency accumulator (thread-safe)."""

    __slots__ = ("_lock", "_buckets", "count", "total")

    def __init__(self):
        self._lock = threading.Lock()
        self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        index = 0
        while index < len(_BUCKET_BOUNDS) and seconds > _BUCKET_BOUNDS[index]:
            index += 1
        with self._lock:
            self._buckets[index] += 1
            self.count += 1
            self.total += seconds

    def percentile(self, fraction: float) -> float:
        """Upper bucket bound at the given quantile (0 when empty)."""
        with self._lock:
            remaining = int(self.count * fraction)
            for index, in_bucket in enumerate(self._buckets):
                remaining -= in_bucket
                if remaining < 0:
                    if index >= len(_BUCKET_BOUNDS):
                        return _BUCKET_BOUNDS[-1]
                    return _BUCKET_BOUNDS[index]
        return 0.0

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper-bound-seconds, count) for every populated bucket."""
        with self._lock:
            snapshot = list(self._buckets)
        out = []
        for index, in_bucket in enumerate(snapshot):
            if in_bucket:
                bound = _BUCKET_BOUNDS[index] \
                    if index < len(_BUCKET_BOUNDS) else float("inf")
                out.append((bound, in_bucket))
        return out


class Telemetry:
    """Per-server telemetry: histogram + slow-query ring + stats lines."""

    def __init__(self, db, slow_query_seconds: float = 0.25,
                 slow_log_size: int = 128):
        self.db = db
        self.slow_query_seconds = slow_query_seconds
        self.histogram = LatencyHistogram()
        self._lock = threading.Lock()
        self._slow: deque = deque(maxlen=slow_log_size)

    def record(self, sql: str, elapsed: float,
               error: Optional[BaseException] = None) -> bool:
        """Record one query; returns True when it was slow."""
        self.histogram.observe(elapsed)
        if elapsed >= self.slow_query_seconds:
            with self._lock:
                self._slow.append((time.time(), elapsed,
                                   " ".join(sql.split())[:500],
                                   type(error).__name__ if error else ""))
            return True
        return False

    def slow_queries(self) -> list[tuple]:
        with self._lock:
            return list(self._slow)

    def stats_lines(self, pool=None) -> list[str]:
        """The ``STATS`` endpoint payload: one ``name value`` per line."""
        lines = []
        if pool is not None:
            lines.append(f"server_active_connections {pool.active}")
            lines.append(f"server_max_connections {pool.max_connections}")
        hist = self.histogram
        lines.append(f"server_query_seconds_count {hist.count}")
        lines.append(f"server_query_seconds_sum {hist.total:.6f}")
        for bound, in_bucket in hist.nonzero_buckets():
            label = "+Inf" if bound == float("inf") else f"{bound:.6f}"
            lines.append(f'server_query_seconds_bucket{{le="{label}"}} '
                         f"{in_bucket}")
        for fraction in (0.5, 0.9, 0.99):
            lines.append(f"server_query_seconds_p{int(fraction * 100)} "
                         f"{hist.percentile(fraction):.6f}")
        profiler = self.db.profiler
        with profiler._counts_lock:
            counts = dict(profiler.counts)
        for counter in sorted(counts):
            name = counter.replace(" ", "_").replace("->", "_to_")
            lines.append(f"counter_{name} {counts[counter]}")
        for when, elapsed, sql, err in self.slow_queries():
            suffix = f" error={err}" if err else ""
            lines.append(f"slow_query {elapsed:.6f}s{suffix} {sql}")
        return lines
