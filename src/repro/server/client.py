"""Blocking simple-protocol client.

A minimal synchronous client over :mod:`repro.server.protocol` — enough
for the README quickstart, the throughput benchmark and the fuzzer's
wire oracle.  (The conformance suite deliberately does *not* use this:
``tests/wireclient.py`` frames its own bytes so protocol bugs can't
cancel out between client and server.)

>>> # doctest-style usage lives in README.md; the skeleton is:
>>> # with ServerThread(db) as (host, port):
>>> #     with connect(host, port) as client:
>>> #         client.query("SELECT 1")[0].rows
"""

from __future__ import annotations

import random
import socket
import struct
import time
from typing import Optional

from . import protocol as p


class ServerError(Exception):
    """An ErrorResponse from the server (after draining to ReadyForQuery).

    ``sqlstate`` carries the five-character code; ``severity`` is ERROR
    for statement failures and FATAL for connection-level rejections
    (admission, idle timeout, protocol violations).
    """

    def __init__(self, sqlstate: str, message: str, severity: str = "ERROR"):
        super().__init__(f"{severity} {sqlstate}: {message}")
        self.sqlstate = sqlstate
        self.message = message
        self.severity = severity


class StatementResult:
    """One statement's outcome inside a Query round trip."""

    __slots__ = ("columns", "rows", "command_tag")

    def __init__(self, columns, rows, command_tag):
        self.columns = columns      # None for row-less statements
        self.rows = rows            # list of tuples of Optional[str]
        self.command_tag = command_tag

    def scalar(self) -> Optional[str]:
        assert self.rows is not None and len(self.rows) == 1 \
            and len(self.rows[0]) == 1
        return self.rows[0][0]

    def __repr__(self):
        n = "-" if self.rows is None else len(self.rows)
        return f"StatementResult({self.command_tag!r}, {n} rows)"


class WireClient:
    """One blocking connection; use :func:`connect` to open and greet."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._address = (host, port)
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.parameters: dict[str, str] = {}
        self.notices: list[str] = []
        self.transaction_status = b"I"
        #: From BackendKeyData: what :meth:`cancel` quotes back.
        self.backend_pid = 0
        self.backend_secret = 0
        self._closed = False

    # -- low-level I/O ---------------------------------------------------

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            chunk = self.sock.recv(n)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def _read_message(self) -> tuple[bytes, bytes]:
        header = self._recv_exact(5)
        (length,) = struct.unpack("!I", header[1:])
        return header[:1], self._recv_exact(length - 4)

    # -- session ---------------------------------------------------------

    def startup(self, user: str = "repro",
                database: str = "repro") -> "WireClient":
        """Send StartupMessage and consume the greeting up to
        ReadyForQuery; raises :class:`ServerError` on rejection."""
        self.sock.sendall(p.encode_startup(
            {"user": user, "database": database}))
        while True:
            type_byte, payload = self._read_message()
            if type_byte == b"R":
                (flavour,) = struct.unpack_from("!I", payload, 0)
                if flavour != 0:
                    raise ServerError("08P01",
                                      f"unsupported auth flavour {flavour}")
            elif type_byte == b"S":
                key, value = payload.split(b"\x00")[:2]
                self.parameters[key.decode()] = value.decode()
            elif type_byte == b"K":
                self.backend_pid, self.backend_secret = \
                    struct.unpack_from("!II", payload, 0)
            elif type_byte == b"E":
                fields = p.parse_diagnostic_fields(payload)
                raise ServerError(fields.get("C", "XX000"),
                                  fields.get("M", "startup rejected"),
                                  fields.get("S", "FATAL"))
            elif type_byte == b"Z":
                self.transaction_status = payload
                return self
            # anything else in the greeting is ignored

    def query(self, sql: str) -> list[StatementResult]:
        """Run one Query round trip; returns per-statement results.

        Raises :class:`ServerError` for the *first* ErrorResponse — after
        draining the stream to ReadyForQuery, so the connection stays
        usable and ``transaction_status`` is current.  NoticeResponses
        accumulate on :attr:`notices`.
        """
        self.sock.sendall(p.encode_query(sql))
        results: list[StatementResult] = []
        error: Optional[ServerError] = None
        columns = None
        rows: list[tuple] = []
        while True:
            type_byte, payload = self._read_message()
            if type_byte == b"T":
                columns = p.parse_row_description(payload)
                rows = []
            elif type_byte == b"D":
                rows.append(tuple(p.parse_data_row(payload)))
            elif type_byte == b"C":
                tag = p.parse_command_complete(payload)
                results.append(StatementResult(columns, rows if columns
                                               is not None else None, tag))
                columns, rows = None, []
            elif type_byte == b"I":
                results.append(StatementResult(None, None, ""))
            elif type_byte == b"E":
                fields = p.parse_diagnostic_fields(payload)
                if error is None:
                    error = ServerError(fields.get("C", "XX000"),
                                        fields.get("M", ""),
                                        fields.get("S", "ERROR"))
            elif type_byte == b"N":
                fields = p.parse_diagnostic_fields(payload)
                self.notices.append(fields.get("M", ""))
            elif type_byte == b"Z":
                self.transaction_status = payload
                if error is not None:
                    raise error
                return results

    def query_rows(self, sql: str) -> list[tuple]:
        """Rows of the last row-producing statement in *sql*."""
        for result in reversed(self.query(sql)):
            if result.rows is not None:
                return result.rows
        raise ServerError("XX000", "statement returned no result set")

    def query_retry(self, sql: str, attempts: int = 10,
                    base_delay: float = 0.002) -> list[StatementResult]:
        """Run *sql*, retrying serialization failures (SQLSTATE 40001)
        with exponential backoff plus jitter.

        Any other error propagates on the first occurrence; 40001 after
        the final attempt propagates too.  When a failure leaves the
        session inside an (aborted) transaction block, a ROLLBACK is
        issued before the retry so each attempt starts clean.  Returns
        the successful attempt's results.
        """
        for attempt in range(attempts):
            try:
                return self.query(sql)
            except ServerError as error:
                if error.sqlstate != "40001" or attempt == attempts - 1:
                    raise
                if self.transaction_status != b"I":
                    self.query("ROLLBACK")
                # Full jitter: sleep in [0, base * 2^attempt), capped —
                # decorrelates retries of colliding sessions.
                time.sleep(random.uniform(
                    0, min(base_delay * (2 ** attempt), 0.1)))
        raise AssertionError("unreachable")  # pragma: no cover

    def cancel(self) -> None:
        """Ask the server to cancel this session's in-flight query.

        Sent on a *fresh* connection quoting the BackendKeyData pair,
        exactly like PostgreSQL — this socket is blocked mid-query, so a
        cancel cannot travel on it.  Fire-and-forget: no reply arrives;
        the canceled query fails over here with SQLSTATE 57014.
        """
        with socket.create_connection(self._address, timeout=5.0) as sock:
            sock.sendall(p.encode_cancel_request(self.backend_pid,
                                                 self.backend_secret))

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.sock.sendall(p.encode_terminate())
            except OSError:
                pass
            self.sock.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(host: str, port: int, user: str = "repro",
            database: str = "repro", timeout: float = 30.0) -> WireClient:
    """Open a connection and complete the startup handshake."""
    return WireClient(host, port, timeout=timeout).startup(user, database)
