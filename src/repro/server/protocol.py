"""PostgreSQL simple-protocol (v3) message codec.

Pure byte-level encode/decode for the subset of the wire protocol the
server speaks — no sockets, no asyncio, so the same functions back the
asyncio server, the blocking :mod:`repro.server.client`, the conformance
suite's independent test client, and the fuzzer's wire oracle.

Frames
------

Every message after the startup phase is ``type_byte + int32 length +
payload`` where the length covers itself but not the type byte.  The
startup phase is untyped: ``int32 length + int32 code + payload``, where
the code is a protocol version (:data:`PROTOCOL_VERSION`) or one of the
special request codes (:data:`SSL_REQUEST_CODE`,
:data:`CANCEL_REQUEST_CODE`).

Messages implemented (direction as in the PostgreSQL docs):

========================  ====  =========================================
StartupMessage            F->B  protocol version + ``key\\0value\\0...\\0``
SSLRequest                F->B  answered with a plain ``N`` byte
CancelRequest             F->B  pid + secret; trips the target's token
Query                     F->B  one SQL script, null-terminated
Terminate                 F->B  clean connection shutdown
AuthenticationOk          B->F  ``R`` + int32 0 (the only auth flavour)
ParameterStatus           B->F  ``S`` + two c-strings
BackendKeyData            B->F  ``K`` + pid + secret
RowDescription            B->F  ``T`` — all columns typed as text (oid 25)
DataRow                   B->F  ``D`` — values pre-rendered to text
CommandComplete           B->F  ``C`` + tag
EmptyQueryResponse        B->F  ``I``
ErrorResponse             B->F  ``E`` + S/V/C/M fields
NoticeResponse            B->F  ``N`` + S/V/C/M fields
ReadyForQuery             B->F  ``Z`` + transaction-status byte
========================  ====  =========================================

SQLSTATE mapping
----------------

:data:`SQLSTATE_FOR_LABEL` maps every :func:`repro.sql.errors.error_class`
taxonomy label to a distinct five-character SQLSTATE, so the fuzzer's wire
oracle can reverse an ErrorResponse back to the exact taxonomy label the
embedded engine would have produced (:data:`LABEL_FOR_SQLSTATE` is the
inverse; the mapping is deliberately injective).  Server-level conditions
that have no embedded counterpart get the standard PostgreSQL codes
(53300 too many connections, 57P05 idle timeout, 08P01 protocol
violation).
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from ..sql.errors import error_class
from ..sql.values import render_value

#: ``196608`` — protocol 3.0, the only version accepted.
PROTOCOL_VERSION = 196608
#: Startup-phase magic for an SSL negotiation probe (answered ``N``).
SSL_REQUEST_CODE = 80877103
#: Startup-phase magic for an out-of-band cancel request.
CANCEL_REQUEST_CODE = 80877102

#: Injective taxonomy-label -> SQLSTATE map (see module docstring).
SQLSTATE_FOR_LABEL = {
    "serialization": "40001",
    "query-canceled": "57014",
    "parse": "42601",
    "name-resolution": "42704",
    "plan": "0A000",
    "execution": "22000",
    "type": "42804",
    "catalog": "42P01",
    "setting": "22023",
    "compile": "42P13",
    "no-return": "2F005",
    "plsql-runtime": "P0001",
    "plsql": "P0000",
    "sql": "XX001",
    "crash": "XX000",
}
LABEL_FOR_SQLSTATE = {state: label for label, state in
                      SQLSTATE_FOR_LABEL.items()}
assert len(LABEL_FOR_SQLSTATE) == len(SQLSTATE_FOR_LABEL)

#: Server-level SQLSTATEs (no embedded-engine counterpart).
TOO_MANY_CONNECTIONS = "53300"
IDLE_TIMEOUT = "57P05"
PROTOCOL_VIOLATION = "08P01"

#: Transaction-status bytes carried by ReadyForQuery.
STATUS_IDLE = b"I"
STATUS_IN_TRANSACTION = b"T"

#: Upper bound on a single frame (16 MiB) — a length prefix beyond this is
#: treated as a malformed frame, not an allocation request.
MAX_MESSAGE_LENGTH = 16 * 1024 * 1024

_TEXT_OID = 25  # everything is text on this wire


def sqlstate_for(error: BaseException) -> str:
    """The SQLSTATE an engine exception travels under."""
    return SQLSTATE_FOR_LABEL[error_class(error)]


class ProtocolError(Exception):
    """A malformed or out-of-protocol frame (maps to SQLSTATE 08P01)."""


# ---------------------------------------------------------------------------
# Encoding (backend -> frontend)
# ---------------------------------------------------------------------------

def encode_message(type_byte: bytes, payload: bytes = b"") -> bytes:
    """One typed frame: type byte + length (covering itself) + payload."""
    return type_byte + struct.pack("!I", len(payload) + 4) + payload


def _cstr(text: str) -> bytes:
    return text.encode("utf-8", "replace") + b"\x00"


def authentication_ok() -> bytes:
    return encode_message(b"R", struct.pack("!I", 0))


def parameter_status(name: str, value: str) -> bytes:
    return encode_message(b"S", _cstr(name) + _cstr(value))


def backend_key_data(pid: int, secret: int) -> bytes:
    return encode_message(b"K", struct.pack("!II", pid & 0xFFFFFFFF,
                                            secret & 0xFFFFFFFF))


def ready_for_query(status: bytes = STATUS_IDLE) -> bytes:
    return encode_message(b"Z", status)


def row_description(columns: Sequence[str]) -> bytes:
    parts = [struct.pack("!H", len(columns))]
    for name in columns:
        parts.append(_cstr(name))
        # table oid, attnum, type oid (text), typlen, typmod, format(text)
        parts.append(struct.pack("!IhIhih", 0, 0, _TEXT_OID, -1, -1, 0))
    return encode_message(b"T", b"".join(parts))


def data_row(values: Sequence[Optional[str]]) -> bytes:
    """One DataRow; entries are pre-rendered text, ``None`` meaning NULL."""
    parts = [struct.pack("!H", len(values))]
    for value in values:
        if value is None:
            parts.append(struct.pack("!i", -1))
        else:
            data = value.encode("utf-8", "replace")
            parts.append(struct.pack("!i", len(data)))
            parts.append(data)
    return encode_message(b"D", b"".join(parts))


def render_row(row: Sequence) -> tuple:
    """Render an engine row for the wire (SQL NULL stays ``None``)."""
    return tuple(None if value is None else render_value(value)
                 for value in row)


def command_complete(tag: str) -> bytes:
    return encode_message(b"C", _cstr(tag))


def empty_query_response() -> bytes:
    return encode_message(b"I")


def _diagnostic_fields(severity: str, code: str, message: str) -> bytes:
    return (b"S" + _cstr(severity) + b"V" + _cstr(severity)
            + b"C" + _cstr(code) + b"M" + _cstr(message) + b"\x00")


def error_response(code: str, message: str,
                   severity: str = "ERROR") -> bytes:
    return encode_message(b"E", _diagnostic_fields(severity, code, message))


def notice_response(message: str, code: str = "00000",
                    severity: str = "NOTICE") -> bytes:
    return encode_message(b"N", _diagnostic_fields(severity, code, message))


# ---------------------------------------------------------------------------
# Decoding (both directions; the test client decodes backend messages too)
# ---------------------------------------------------------------------------

def encode_startup(params: dict[str, str]) -> bytes:
    """Frontend StartupMessage for :class:`~repro.server.client.WireClient`."""
    payload = struct.pack("!I", PROTOCOL_VERSION)
    for key, value in params.items():
        payload += _cstr(key) + _cstr(value)
    payload += b"\x00"
    return struct.pack("!I", len(payload) + 4) + payload


def encode_query(sql: str) -> bytes:
    return encode_message(b"Q", _cstr(sql))


def encode_terminate() -> bytes:
    return encode_message(b"X")


def encode_cancel_request(pid: int, secret: int) -> bytes:
    """Frontend CancelRequest: an untyped startup-phase frame sent on a
    *fresh* connection (the canceled session's socket is busy mid-query)."""
    return struct.pack("!IIII", 16, CANCEL_REQUEST_CODE,
                       pid & 0xFFFFFFFF, secret & 0xFFFFFFFF)


def parse_startup_payload(payload: bytes) -> dict[str, str]:
    """Decode the ``key\\0value\\0...\\0`` tail of a StartupMessage."""
    params: dict[str, str] = {}
    parts = payload.split(b"\x00")
    # trailing terminator -> last one/two parts are empty
    fields = [p for p in parts if p]
    if len(fields) % 2:
        raise ProtocolError("startup parameters are not key/value pairs")
    for i in range(0, len(fields), 2):
        params[fields[i].decode("utf-8", "replace")] = \
            fields[i + 1].decode("utf-8", "replace")
    return params


def parse_diagnostic_fields(payload: bytes) -> dict[str, str]:
    """Decode ErrorResponse/NoticeResponse fields into ``{code: text}``."""
    fields: dict[str, str] = {}
    pos = 0
    while pos < len(payload) and payload[pos:pos + 1] != b"\x00":
        code = payload[pos:pos + 1].decode("ascii", "replace")
        end = payload.index(b"\x00", pos + 1)
        fields[code] = payload[pos + 1:end].decode("utf-8", "replace")
        pos = end + 1
    return fields


def parse_row_description(payload: bytes) -> list[str]:
    (count,) = struct.unpack_from("!H", payload, 0)
    pos = 2
    names = []
    for _ in range(count):
        end = payload.index(b"\x00", pos)
        names.append(payload[pos:end].decode("utf-8", "replace"))
        pos = end + 1 + 18  # fixed-width field descriptor
    return names


def parse_data_row(payload: bytes) -> list[Optional[str]]:
    (count,) = struct.unpack_from("!H", payload, 0)
    pos = 2
    values: list[Optional[str]] = []
    for _ in range(count):
        (length,) = struct.unpack_from("!i", payload, pos)
        pos += 4
        if length < 0:
            values.append(None)
        else:
            values.append(payload[pos:pos + length].decode("utf-8",
                                                           "replace"))
            pos += length
    return values


def parse_command_complete(payload: bytes) -> str:
    return payload.rstrip(b"\x00").decode("utf-8", "replace")
