"""The asyncio wire server and its thread-hosted test/bench harness.

:class:`SqlServer` accepts PostgreSQL simple-protocol connections and
maps each one onto a :meth:`repro.sql.engine.Database.connect` session,
so SET/SHOW, PREPARE/EXECUTE and BEGIN/COMMIT/ROLLBACK behave over the
wire exactly as they do embedded.

Threading model (see ARCHITECTURE.md "Service surface")
-------------------------------------------------------

The event loop runs a callback-based :class:`asyncio.Protocol` — it only
frames bytes and schedules work; it never executes SQL:

* every ``Query`` runs on the bounded thread-pool executor
  (:func:`repro.server.pool.make_executor`) — a slow query occupies a
  worker thread, never the loop;
* **per-session serialization** is guaranteed structurally: a connection
  submits at most one query at a time, and frames a pipelining client
  sends early queue on the connection and chain onto the same worker
  path strictly in order;
* responses are written back through a **coalescing outbox**: workers
  append encoded replies and wake the loop once per batch
  (``call_soon_threadsafe``), so under concurrency the loop drains many
  responses per wakeup instead of paying one cross-thread wake per query
  — a lone client still gets woken immediately;
* admission control (:class:`repro.server.pool.ConnectionPool`) rejects
  over-limit startups with SQLSTATE 53300 *before* creating a session;
* idle sessions are reaped after ``idle_timeout`` seconds with SQLSTATE
  57P05 (a connection with a query in flight is never idle);
* ``STATS`` / ``METRICS`` (as the entire query text) is answered on the
  event loop from :class:`repro.server.telemetry.Telemetry` without
  touching the engine — the observability plane stays responsive while
  workers grind.

:class:`ServerThread` hosts a server on a daemon thread with its own
event loop — the shape tests, benchmarks, the fuzzer's wire oracle and
the README quickstart all use::

    with ServerThread(db) as address:
        client = connect(*address)
"""

from __future__ import annotations

import asyncio
import collections
import os
import socket
import struct
import threading
from typing import Optional

from ..faults import FAULTS
from ..sql.profiler import (SERVER_CONNECTIONS, SERVER_IDLE_CLOSED,
                            SERVER_REJECTED)
from . import protocol as p
from .handler import run_script
from .pool import DEFAULT_WORKERS, ConnectionPool, make_executor
from .telemetry import Telemetry

#: ParameterStatus pairs sent after AuthenticationOk (what psql expects
#: to learn about the backend).
_STARTUP_PARAMETERS = (
    ("server_version", "14.0 (repro)"),
    ("client_encoding", "UTF8"),
    ("integer_datetimes", "on"),
)

_STARTUP, _READY, _CLOSED = 0, 1, 2


class _WireConnection(asyncio.Protocol):
    """One client connection: a framing state machine on the event loop.

    Bytes are parsed incrementally (``data_received`` may deliver any
    split); complete ``Query`` frames are chained through the worker
    pool one at a time per connection.  All state mutated by both the
    loop and workers (the pending-frame queue and the in-flight flag)
    sits behind ``_chain_lock``.
    """

    def __init__(self, server: "SqlServer"):
        self.server = server
        self.loop = server._loop
        self.buf = bytearray()
        self.phase = _STARTUP
        self.transport = None
        self.session = None
        self.admitted = False
        self._chain_lock = threading.Lock()
        self._pending: collections.deque = collections.deque()
        self._inflight = False
        self._idle_handle = None
        self._last_activity = 0.0
        #: (pid, secret) sent in BackendKeyData; a CancelRequest quoting
        #: both trips this session's cancel token.
        self.backend_key: Optional[tuple[int, int]] = None

    # -- lifecycle (loop thread) ----------------------------------------

    def connection_made(self, transport) -> None:
        self.transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            # Request/response round trips die without NODELAY: Nagle
            # would hold each small frame for the previous ACK.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.server._connections.add(self)

    def connection_lost(self, exc) -> None:
        self.phase = _CLOSED
        if self._idle_handle is not None:
            self._idle_handle.cancel()
            self._idle_handle = None
        self.server._connections.discard(self)
        if self.backend_key is not None:
            with self.server._keys_lock:
                self.server._cancel_keys.pop(self.backend_key, None)
            self.backend_key = None
        if self.session is not None:
            # Engine-level cleanup (rolls back an open transaction,
            # drops prepared statements) — on a worker, off the loop.
            session, self.session = self.session, None
            try:
                self.server.executor.submit(session.close)
            except RuntimeError:  # executor already shut down
                session.close()
        if self.admitted:
            self.admitted = False
            self.server.pool.release()

    def _fatal(self, sqlstate: str, message: str) -> None:
        """Send a FATAL ErrorResponse and close (loop thread only)."""
        if self.phase != _CLOSED and not self.transport.is_closing():
            self.transport.write(p.error_response(sqlstate, message,
                                                  severity="FATAL"))
            self.transport.close()
        self.phase = _CLOSED

    # -- framing (loop thread) ------------------------------------------

    def data_received(self, data: bytes) -> None:
        self._last_activity = self.loop.time()
        self.buf += data
        try:
            if self.phase == _STARTUP:
                self._drain_startup_frames()
            if self.phase == _READY:
                self._drain_typed_frames()
        except p.ProtocolError as exc:
            self._fatal(p.PROTOCOL_VIOLATION, str(exc))

    def _drain_startup_frames(self) -> None:
        while self.phase == _STARTUP and len(self.buf) >= 4:
            (length,) = struct.unpack_from("!I", self.buf, 0)
            if length < 8 or length > p.MAX_MESSAGE_LENGTH:
                raise p.ProtocolError(f"bad startup message length {length}")
            if len(self.buf) < length:
                return
            payload = bytes(self.buf[4:length])
            del self.buf[:length]
            (code,) = struct.unpack_from("!I", payload, 0)
            if code == p.SSL_REQUEST_CODE:
                self.transport.write(b"N")
            elif code == p.CANCEL_REQUEST_CODE:
                if len(payload) >= 12:
                    pid, secret = struct.unpack_from("!II", payload, 4)
                    self.server._handle_cancel_request(pid, secret)
                # Always close silently — like PostgreSQL, the requester
                # learns nothing about whether the key matched.
                self.transport.close()
                self.phase = _CLOSED
            elif code == p.PROTOCOL_VERSION:
                p.parse_startup_payload(payload[4:])  # validated, unused
                self._complete_startup()
            else:
                raise p.ProtocolError(f"unsupported protocol code {code}")

    def _complete_startup(self) -> None:
        server = self.server
        if not server.pool.try_acquire():
            server.db.profiler.bump(SERVER_REJECTED)
            self._fatal(p.TOO_MANY_CONNECTIONS,
                        f"too many connections (max_connections="
                        f"{server.pool.max_connections})")
            return
        self.admitted = True
        self.session = server.db.connect()
        server.db.profiler.bump(SERVER_CONNECTIONS)
        server._next_backend_pid += 1
        pid = server._next_backend_pid
        secret = int.from_bytes(os.urandom(4), "big")
        self.backend_key = (pid, secret)
        with server._keys_lock:
            server._cancel_keys[self.backend_key] = self
        greeting = [p.authentication_ok()]
        for name, value in _STARTUP_PARAMETERS:
            greeting.append(p.parameter_status(name, value))
        greeting.append(p.backend_key_data(pid, secret))
        greeting.append(p.ready_for_query(p.STATUS_IDLE))
        self.transport.write(b"".join(greeting))
        self.phase = _READY
        if server.idle_timeout is not None:
            self._idle_handle = self.loop.call_later(
                server.idle_timeout, self._idle_check)

    def _drain_typed_frames(self) -> None:
        while self.phase == _READY and len(self.buf) >= 5:
            type_byte = bytes(self.buf[:1])
            (length,) = struct.unpack_from("!I", self.buf, 1)
            if length < 4 or length > p.MAX_MESSAGE_LENGTH:
                raise p.ProtocolError(
                    f"bad message length {length} for type {type_byte!r}")
            total = 1 + length
            if len(self.buf) < total:
                return
            payload = bytes(self.buf[5:total])
            del self.buf[:total]
            if type_byte == b"X":  # Terminate
                self.transport.close()
                self.phase = _CLOSED
            elif type_byte == b"Q":
                sql = payload.rstrip(b"\x00").decode("utf-8", "replace")
                if sql.strip().rstrip(";").upper() in ("STATS", "METRICS"):
                    self.transport.write(self.server._stats_response(self))
                else:
                    self._enqueue_query(sql)
            else:
                raise p.ProtocolError(
                    f"unexpected message type {type_byte!r} "
                    f"(only simple Query is supported)")

    # -- query chaining (loop thread enqueues, workers execute) ----------

    def _enqueue_query(self, sql: str) -> None:
        with self._chain_lock:
            if self._inflight:
                self._pending.append(sql)
                return
            self._inflight = True
        self.server.executor.submit(self._run_chain, sql)

    def _run_chain(self, sql: str) -> None:
        """Worker thread: run queries for this connection until its
        pending queue is empty — per-session serialization by
        construction."""
        server = self.server
        while True:
            try:
                response = server._execute(self, sql)
            except Exception as exc:  # never kill the worker
                response = (p.error_response(
                    "XX000", f"{type(exc).__name__}: {exc}")
                    + p.ready_for_query(p.STATUS_IDLE))
            server._send(self, response)
            with self._chain_lock:
                if self._pending:
                    sql = self._pending.popleft()
                else:
                    self._inflight = False
                    return

    # -- idle reaping (loop thread) --------------------------------------

    def _idle_check(self) -> None:
        if self.phase != _READY:
            return
        timeout = self.server.idle_timeout
        with self._chain_lock:
            busy = self._inflight or bool(self._pending)
        idle_for = self.loop.time() - self._last_activity
        if not busy and idle_for >= timeout:
            self.server.db.profiler.bump(SERVER_IDLE_CLOSED)
            self._fatal(p.IDLE_TIMEOUT,
                        f"terminating connection: idle for more than "
                        f"{timeout}s")
            return
        delay = timeout if busy else timeout - idle_for
        self._idle_handle = self.loop.call_later(max(delay, 0.05),
                                                 self._idle_check)


class SqlServer:
    """Asyncio TCP server speaking the simple-protocol subset."""

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 64,
                 idle_timeout: Optional[float] = None,
                 workers: int = DEFAULT_WORKERS,
                 slow_query_seconds: float = 0.25):
        self.db = db
        self.host = host
        self.port = port
        self.pool = ConnectionPool(max_connections)
        self.idle_timeout = idle_timeout
        self.telemetry = Telemetry(db, slow_query_seconds=slow_query_seconds)
        self.executor = make_executor(workers)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._next_backend_pid = 0
        self._connections: set[_WireConnection] = set()
        #: (pid, secret) -> connection, for out-of-band CancelRequests.
        self._keys_lock = threading.Lock()
        self._cancel_keys: dict[tuple[int, int], _WireConnection] = {}
        # Coalescing outbox: workers append (conn, bytes) and wake the
        # loop at most once per batch in flight.
        self._outbox_lock = threading.Lock()
        self._outbox: list[tuple[_WireConnection, bytes]] = []
        self._flush_scheduled = False

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound (resolves an ephemeral port 0)."""
        assert self._server is not None, "server is not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await self._loop.create_server(
            lambda: _WireConnection(self), self.host, self.port)

    async def serve_forever(self) -> None:
        await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            if conn.transport is not None:
                conn.transport.close()
        self.executor.shutdown(wait=True, cancel_futures=True)

    # -- query execution (worker threads) --------------------------------

    def _execute(self, conn: _WireConnection, sql: str) -> bytes:
        """Run one Query payload and encode the full response buffer."""
        outputs = run_script(conn.session, sql, self.telemetry)
        parts = []
        for record in outputs:
            kind = record[0]
            if kind == "rows":
                _, columns, rows, tag = record
                parts.append(p.row_description(columns))
                parts.extend(p.data_row(row) for row in rows)
                parts.append(p.command_complete(tag))
            elif kind == "complete":
                parts.append(p.command_complete(record[1]))
            elif kind == "notice":
                parts.append(p.notice_response(record[1]))
            elif kind == "error":
                parts.append(p.error_response(record[1], record[2]))
            elif kind == "empty":
                parts.append(p.empty_query_response())
        parts.append(p.ready_for_query(self._txn_status(conn.session)))
        return b"".join(parts)

    @staticmethod
    def _txn_status(session) -> bytes:
        return p.STATUS_IN_TRANSACTION if session.in_transaction \
            else p.STATUS_IDLE

    # -- cancellation (loop thread) ---------------------------------------

    def _handle_cancel_request(self, pid: int, secret: int) -> None:
        """Trip the target session's cancel token if (pid, secret) names a
        live connection; silently ignore otherwise (wrong secret included).
        The running statement notices at its next cooperative poll."""
        with self._keys_lock:
            target = self._cancel_keys.get((pid, secret))
        if target is not None and target.session is not None:
            target.session.cancel.trip()

    # -- response delivery (workers -> loop) ------------------------------

    def _send(self, conn: _WireConnection, data: bytes) -> None:
        if FAULTS.active:
            FAULTS.fire("server.send", self.db.profiler)
        with self._outbox_lock:
            self._outbox.append((conn, data))
            if self._flush_scheduled:
                return
            self._flush_scheduled = True
        self._loop.call_soon_threadsafe(self._flush)

    def _flush(self) -> None:
        with self._outbox_lock:
            batch, self._outbox = self._outbox, []
            self._flush_scheduled = False
        for conn, data in batch:
            if conn.transport is not None and not conn.transport.is_closing():
                conn.transport.write(data)

    # -- STATS (loop thread) ---------------------------------------------

    def _stats_response(self, conn: _WireConnection) -> bytes:
        lines = self.telemetry.stats_lines(self.pool)
        parts = [p.row_description(["metric"])]
        parts.extend(p.data_row([line]) for line in lines)
        parts.append(p.command_complete(f"STATS {len(lines)}"))
        parts.append(p.ready_for_query(self._txn_status(conn.session)))
        return b"".join(parts)


class ServerThread:
    """A :class:`SqlServer` on a daemon thread with its own event loop.

    ``with ServerThread(db) as (host, port): ...`` — used by the tests,
    the benchmark driver, the fuzzer's wire oracle and the README
    quickstart.  ``port=0`` (the default) binds an ephemeral port.
    """

    def __init__(self, db, **kwargs):
        self.server = SqlServer(db, **kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server-loop")
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server thread failed to start in time")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> tuple[str, int]:
        self.start()
        return self.address

    def __exit__(self, *exc) -> None:
        self.stop()
