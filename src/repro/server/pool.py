"""Connection admission and the bounded query executor.

Two resources are bounded independently:

* **Connections** — :class:`ConnectionPool` counts live sessions and
  rejects the ``max_connections + 1``-th startup with SQLSTATE 53300
  before a session is ever created, so an over-limit client costs one
  refused handshake, not an engine session.  Slots release on disconnect
  *and* on idle-timeout reaping (the server wraps its per-connection
  reads in a timeout; see :mod:`repro.server.server`).

* **Worker threads** — a single bounded
  :class:`~concurrent.futures.ThreadPoolExecutor` runs every query for
  every connection, so one slow query occupies one worker, never the
  event loop.  Per-session serialization needs no machinery on top: the
  simple query protocol is strictly request/response, and the handler
  coroutine awaits each query's future before reading the next frame, so
  a session can never have two queries in flight.

The counter lock makes the pool safe to inspect from worker threads (the
``STATS`` endpoint renders ``pool.active``) while accept/release happen
on the event loop.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

#: Default worker-thread bound.  Engine statements serialize on the
#: database execution lock anyway; workers beyond the lock mostly overlap
#: parse/render CPU and I/O, so a small pool suffices.
DEFAULT_WORKERS = 8


class ConnectionPool:
    """Counting admission gate for live wire sessions."""

    def __init__(self, max_connections: int = 64):
        self.max_connections = max_connections
        self._lock = threading.Lock()
        self._active = 0

    @property
    def active(self) -> int:
        return self._active

    def try_acquire(self) -> bool:
        """Claim a slot; False when the server is full."""
        with self._lock:
            if self._active >= self.max_connections:
                return False
            self._active += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._active > 0:
                self._active -= 1


def make_executor(workers: int = DEFAULT_WORKERS) -> ThreadPoolExecutor:
    return ThreadPoolExecutor(max_workers=workers,
                              thread_name_prefix="repro-server")
