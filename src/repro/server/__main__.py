"""``python -m repro.server`` — serve a database over TCP.

Examples::

    PYTHONPATH=src python -m repro.server --port 5433 --demo
    PYTHONPATH=src python -m repro.server --path db.wal --port 5433

``--demo`` loads a small in-memory schema so a stock psql can poke
around immediately; ``--path`` opens (or creates) a durable
WAL-backed database instead.
"""

from __future__ import annotations

import argparse
import asyncio

from ..sql import Database
from .server import SqlServer

_DEMO_SCHEMA = """
CREATE TABLE items(id int, name text, price float);
INSERT INTO items VALUES (1, 'anvil', 19.5), (2, 'rope', 3.25),
                         (3, 'dynamite', 7.0);
CREATE INDEX items_id ON items(id);
"""


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over the PostgreSQL "
                    "simple protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433)
    parser.add_argument("--path", default=None,
                        help="WAL path for a durable database "
                             "(default: in-memory)")
    parser.add_argument("--demo", action="store_true",
                        help="load a small demo schema at startup")
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="reap sessions idle for this many seconds")
    parser.add_argument("--workers", type=int, default=8,
                        help="query executor thread count")
    parser.add_argument("--slow-query-ms", type=float, default=250.0,
                        help="slow-query log threshold in milliseconds")
    args = parser.parse_args(argv)

    db = Database(path=args.path) if args.path else Database()
    if args.demo:
        for statement in _DEMO_SCHEMA.strip().split(";"):
            if statement.strip():
                db.execute(statement)

    server = SqlServer(db, host=args.host, port=args.port,
                       max_connections=args.max_connections,
                       idle_timeout=args.idle_timeout,
                       workers=args.workers,
                       slow_query_seconds=args.slow_query_ms / 1000.0)
    print(f"repro server listening on {args.host}:{args.port} "
          f"(max_connections={args.max_connections})")
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        print("shutting down")


if __name__ == "__main__":
    main()
