#!/usr/bin/env python
"""Project-specific lint over ``src/`` — rules a generic linter can't know.

Three checks, each born from a real failure mode in this codebase:

1. **Unbounded loops must poll cancellation.**  The executor's trampoline
   loops (`WITH RECURSIVE`, batched UDFs) and the PL/pgSQL interpreter
   run user-controlled iteration counts; any such loop that forgets to
   poll a :class:`repro.sql.cancel.CancelToken` turns query cancellation
   and statement timeouts into dead letters.  In the designated hot
   modules, every ``while`` loop whose condition is not a structural
   bound (``True``, a bare name like ``working``, or a method call) must
   transitively poll — contain a call to ``.check()``, ``_tick()``,
   ``exec_stmt()`` or ``_loop_body()`` — or carry a ``# lint: bounded``
   comment explaining why it terminates.

2. **No bare ``except:``.**  A bare handler swallows
   ``KeyboardInterrupt`` and ``SystemExit``; the narrowest acceptable
   blanket is ``except Exception`` (with a noqa-style justification for
   reviewers, but that part is convention, not lint).

3. **Profiler counters must be declared.**  Counter names flow as plain
   strings into ``Profiler.bump``/``Profiler.phase``; a typo'd constant
   silently creates a parallel counter that no report aggregates.  Every
   ``bump``/``phase`` argument must be a ``NAME`` imported from
   :mod:`repro.sql.profiler` (string literals are rejected too), and the
   name must be assigned a string constant there.

Exit status 0 when clean, 1 with findings on stderr — suitable for CI
(see .github/workflows/ci.yml) and wrapped by tests/test_lint_internal.py.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PROFILER = SRC / "repro" / "sql" / "profiler.py"

#: Modules whose while-loops iterate user-controlled amounts of work.
CANCEL_POLLED_MODULES = (
    "repro/sql/executor",
    "repro/plsql/interpreter.py",
)

#: Calls that poll the cancel token, directly or transitively.
POLLING_CALLS = {"check", "_tick", "exec_stmt", "_loop_body"}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def iter_sources() -> list[Path]:
    return sorted(SRC.rglob("*.py"))


def declared_counters() -> set[str]:
    """Module-level ``NAME = "string"`` assignments in profiler.py."""
    tree = ast.parse(PROFILER.read_text(), filename=str(PROFILER))
    out: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            out.add(node.targets[0].id)
    return out


# -- rule 1: cancellation polling -------------------------------------------

def _needs_poll(test: ast.expr) -> bool:
    """Is this while-condition 'unbounded' (data- or user-dependent)?"""
    if isinstance(test, ast.Constant):
        return bool(test.value)  # while True
    if isinstance(test, ast.Name):
        return True  # while working
    if isinstance(test, ast.Call):
        # while isinstance(node, ...) walks a finite structure; any other
        # call (while self.eval_bool(...)) is data-dependent.
        return not (isinstance(test.func, ast.Name)
                    and test.func.id == "isinstance")
    return False  # comparisons, attribute walks


def _polls(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None)
            if name in POLLING_CALLS:
                return True
    return False


def check_cancel_polling(path: Path, tree: ast.Module,
                         source_lines: list[str]) -> list[Finding]:
    rel = path.relative_to(SRC).as_posix()
    if not any(rel.startswith(prefix) for prefix in CANCEL_POLLED_MODULES):
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.While) or not _needs_poll(node.test):
            continue
        # The annotation may sit on the while-line or the line above it.
        nearby = source_lines[max(0, node.lineno - 2):node.lineno]
        if any("# lint: bounded" in line for line in nearby):
            continue
        if not _polls(node):
            findings.append(Finding(
                path, node.lineno, "cancel-poll",
                "unbounded while-loop never polls the CancelToken "
                "(call cancel.check() / route through exec_stmt, or "
                "annotate '# lint: bounded')"))
    return findings


# -- rule 2: bare except ----------------------------------------------------

def check_bare_except(path: Path, tree: ast.Module) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                path, node.lineno, "bare-except",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                "catch Exception (or narrower)"))
    return findings


# -- rule 3: profiler counters ----------------------------------------------

def check_profiler_counters(path: Path, tree: ast.Module,
                            declared: set[str]) -> list[Finding]:
    if path == PROFILER:
        return []
    imported: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.rsplit(".", 1)[-1] == "profiler":
            imported |= {alias.asname or alias.name
                         for alias in node.names}
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("bump", "phase")):
            continue
        if not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            findings.append(Finding(
                path, node.lineno, "counter-literal",
                f"profiler.{func.attr}({arg.value!r}): counter names "
                "must be constants imported from repro.sql.profiler"))
        elif isinstance(arg, ast.Name):
            if arg.id in imported and arg.id not in declared:
                findings.append(Finding(
                    path, node.lineno, "counter-undeclared",
                    f"profiler counter {arg.id} is not declared in "
                    "profiler.py"))
            elif arg.id not in imported and arg.id.isupper():
                findings.append(Finding(
                    path, node.lineno, "counter-unimported",
                    f"profiler.{func.attr}({arg.id}): constant is not "
                    "imported from repro.sql.profiler"))
    return findings


# -- driver -----------------------------------------------------------------

def run(paths=None) -> list[Finding]:
    declared = declared_counters()
    findings: list[Finding] = []
    for path in (paths if paths is not None else iter_sources()):
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(Finding(path, exc.lineno or 0, "syntax",
                                    str(exc)))
            continue
        source_lines = source.splitlines()
        findings.extend(check_cancel_polling(path, tree, source_lines))
        findings.extend(check_bare_except(path, tree))
        findings.extend(check_profiler_counters(path, tree, declared))
    return findings


def main() -> int:
    findings = run()
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"{len(findings)} internal lint finding(s)", file=sys.stderr)
        return 1
    print(f"internal lint: {len(iter_sources())} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
