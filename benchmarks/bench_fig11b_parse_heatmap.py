"""Figure 11b — heat map for parse(), "Beyond PostgreSQL" (Oracle).

Paper: the same transformation applied to Oracle; parse() improves to
42-55 % relative runtime over most of the grid (values near 100 % in the
tiny corner omitted due to Oracle's coarse timer).

Substitution (see DESIGN.md): no Oracle is available offline — we run the
sweep on our engine and additionally emit the compiled query in Oracle
syntax (``results/fig11b_parse_oracle.sql``) to demonstrate the "modulo
syntactic details" claim.  Shape criteria: the relative runtime *improves*
(decreases) as the input grows — parse's per-iteration interpreter overhead
is large relative to its tiny FSM lookup, so longer inputs amortize better,
matching the paper's left-to-right gradient in Figure 11b.
"""

from __future__ import annotations

from conftest import parse_query

from repro.bench.harness import measure_heatmap, render_heatmap
from repro.workloads import make_parseable_input

INVOCATIONS = [1, 2, 4, 8, 16]
INPUT_LENGTHS = [4, 16, 64, 256, 1024]


def build_heatmap(db, runs: int = 3):
    inputs = {n: make_parseable_input(n, seed=5) for n in INPUT_LENGTHS}

    def make_query(function: str, iterations: int):
        return parse_query(function), [inputs[iterations]]

    return measure_heatmap(db, INVOCATIONS, INPUT_LENGTHS, make_query,
                           slow_name="parse", fast_name="parse_c", runs=runs)


def test_fig11b_report(demo, write_artifact, benchmark):
    db = demo.db

    from repro.bench.harness import ensure_calls_table
    ensure_calls_table(db, 4)
    text_input = make_parseable_input(64, seed=5)

    def one_cell():
        db.execute(parse_query("parse_c"), [text_input])

    benchmark.pedantic(one_cell, rounds=3, iterations=1)

    result = build_heatmap(db)
    text = render_heatmap(result, "Figure 11b: parse, relative runtime % "
                                  "(recursive SQL vs PL/SQL)")
    write_artifact("fig11b_parse_heatmap.txt", text)

    # Oracle-dialect emission of the compiled query (textual artifact).
    oracle_sql = demo.compiled["parse"].sql("oracle")
    write_artifact("fig11b_parse_oracle.sql", oracle_sql)

    # Long inputs amortize: averaged over the grid, the large-input half
    # clearly beats the small-input half (per-cell timings at 4-16 chars
    # are microseconds — pure timer-noise territory).
    left = [row[0] for row in result.grid] + [row[1] for row in result.grid]
    right = [row[-1] for row in result.grid] + [row[-2] for row in result.grid]
    assert sum(right) / len(right) < sum(left) / len(left), (left, right)
    # And at scale, recursive SQL clearly wins everywhere.
    for row in result.grid:
        assert row[-1] < 90.0, row
