"""Wire-server throughput: concurrent clients vs one client.

What the async server buys is **multiplexing**: while one session's
query grinds on an executor thread (or its client is between requests),
the event loop keeps accepting frames from every other session.  The
honest way to measure that on a small machine is the classic
pgbench-style **closed loop with think time**: each client issues a
prepared point query, waits ``THINK_MS``, and repeats.  A single client
is then bounded by ``1 / (round_trip + think)`` regardless of server
capacity, while N clients overlap their think times and approach
``N / (round_trip + think)`` until server capacity binds — the headroom
concurrency is supposed to claim.

(A zero-think closed loop is reported as context but not gated: with
client and server processes sharing this container's single core, its
saturated throughput equals the one-client number by construction and
measures CPU price, not multiplexing.)

Acceptance gate: >= 3x aggregate throughput at 8 clients vs 1 client on
the prepared point-query workload.  ``BENCH_server.json`` records the
curve for the cross-PR perf trajectory.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.bench.harness import render_table
from repro.server import ServerThread, connect
from repro.sql import Database

ROWS = 1_000
THINK_MS = 2.0
OPS_PER_CLIENT = 150
CLIENT_COUNTS = (1, 2, 4, 8)
ZERO_THINK_OPS = 400

PREPARE = "PREPARE pt(int) AS SELECT v FROM pts WHERE id = $1"


def _build_db() -> Database:
    db = Database(profile=False)
    db.execute("CREATE TABLE pts(id int, v int)")
    db.catalog.get_table("pts").insert_many(
        [(i, (i * 7919) % ROWS) for i in range(ROWS)])
    db.execute("CREATE INDEX pts_id ON pts(id)")
    return db


def _client_worker(host, port, n_ops, think_s, barrier, out_queue):
    """One closed-loop client process (module-level: fork target)."""
    client = connect(host, port)
    client.query(PREPARE)
    client.query_rows("EXECUTE pt(0)")  # warm the session's fast path
    barrier.wait()
    started = time.perf_counter()
    for i in range(n_ops):
        key = i % ROWS
        rows = client.query_rows(f"EXECUTE pt({key})")
        assert rows == [(str((key * 7919) % ROWS),)], rows
        if think_s:
            time.sleep(think_s)
    out_queue.put(time.perf_counter() - started)
    client.close()


def _closed_loop_throughput(address, n_clients: int, n_ops: int,
                            think_s: float) -> float:
    """Aggregate ops/s for *n_clients* concurrent closed-loop clients.

    Fork-based processes so the clients cost the server real syscalls
    and scheduling, not just GIL turns inside one interpreter.
    """
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(n_clients)
    out_queue = ctx.Queue()
    host, port = address
    processes = [
        ctx.Process(target=_client_worker,
                    args=(host, port, n_ops, think_s, barrier, out_queue))
        for _ in range(n_clients)]
    for proc in processes:
        proc.start()
    elapsed = [out_queue.get(timeout=120) for _ in processes]
    for proc in processes:
        proc.join(timeout=30)
        assert proc.exitcode == 0, f"client exited {proc.exitcode}"
    # The run isn't over until the slowest client finishes its ops.
    return n_clients * n_ops / max(elapsed)


def test_concurrent_clients_multiply_throughput(write_artifact, write_json):
    db = _build_db()
    with ServerThread(db, workers=4) as address:
        # Context number: single-connection zero-think round-trip cost.
        client = connect(*address)
        client.query(PREPARE)
        client.query_rows("EXECUTE pt(0)")
        started = time.perf_counter()
        for i in range(ZERO_THINK_OPS):
            client.query_rows(f"EXECUTE pt({i % ROWS})")
        zero_think_s = time.perf_counter() - started
        client.close()

        think_s = THINK_MS / 1000.0
        throughput = {
            n: _closed_loop_throughput(address, n, OPS_PER_CLIENT, think_s)
            for n in CLIENT_COUNTS}

    ratio = throughput[8] / throughput[1]
    round_trip_us = zero_think_s * 1e6 / ZERO_THINK_OPS

    rows_table = [
        ["zero-think round trip (1 client)", f"{round_trip_us:.0f} us/op"],
    ] + [
        [f"{n} client{'s' if n > 1 else ''} @ {THINK_MS:g} ms think",
         f"{throughput[n]:.0f} ops/s"]
        for n in CLIENT_COUNTS
    ] + [
        ["8-client / 1-client ratio", f"{ratio:.2f}x"],
    ]
    write_artifact(
        "bench_server.txt",
        render_table(["configuration", "throughput"], rows_table,
                     title=f"Wire server: closed-loop prepared point "
                           f"queries, {OPS_PER_CLIENT} ops/client over "
                           f"{ROWS} rows"))
    write_json("server", {
        "rows": ROWS,
        "ops_per_client": OPS_PER_CLIENT,
        "think_ms": THINK_MS,
        "zero_think_us_per_op": round_trip_us,
        "throughput_ops_per_s": {str(n): throughput[n]
                                 for n in CLIENT_COUNTS},
        "speedups": {
            "concurrency_8_vs_1": ratio,
        },
    })

    # Acceptance gate: concurrency must actually multiply throughput.
    assert ratio >= 3, (
        f"8-client throughput only {ratio:.2f}x the 1-client baseline "
        f"({throughput[1]:.0f} -> {throughput[8]:.0f} ops/s)")
