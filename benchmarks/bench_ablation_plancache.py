"""Ablation — isolating the f→Qi cost: interpreter with plan cache disabled.

Section 1 decomposes the embedded-query toll into (1) plan generation and
caching on first evaluation and (2) plan-cache lookup + instantiation +
teardown per subsequent evaluation.  The interpreter always pays (2); with
the statement plan cache disabled it pays (1) *every* time — re-parsing and
re-planning each embedded query per evaluation — which is how pre-prepared
dynamic SQL behaves.

Expected shape: no-cache >> cached interpreter >> compiled.
"""

from __future__ import annotations

from conftest import walk_query

from repro.bench.harness import render_table, time_query

WIN, LOOSE = 10**9, -(10**9)
STEPS = 300


def _clear_function_caches(db) -> None:
    for fdef in db.catalog.functions.values():
        if fdef.kind == "plpgsql" and fdef.parsed_body is not None:
            fdef.parsed_body._expr_cache.clear()
            fdef.parsed_body._query_cache.clear()


def test_ablation_plancache_report(demo, write_artifact, benchmark):
    db = demo.db

    def cached_run():
        db.reseed(42)
        db.execute(walk_query("walk", per_call=True), [WIN, LOOSE, STEPS])

    benchmark.pedantic(cached_run, rounds=3, iterations=1)

    cached = time_query(db, walk_query("walk", per_call=True),
                        [WIN, LOOSE, STEPS], runs=3)
    compiled = time_query(db, walk_query("walk_c", per_call=True),
                          [WIN, LOOSE, STEPS], runs=3)

    # "No cache": replan each embedded query per iteration by clearing the
    # compiled-expression caches between runs *and* within the run via a
    # fresh parse of the function body each call.  We approximate by
    # clearing per run (full per-evaluation clearing would also discard
    # the interpreter's AST, which PostgreSQL never re-parses either).
    samples = []
    import time as _time
    for _ in range(3):
        db.reseed(42)
        _clear_function_caches(db)
        start = _time.perf_counter()
        db.execute(walk_query("walk", per_call=True), [WIN, LOOSE, STEPS])
        samples.append(_time.perf_counter() - start)
    no_cache_first = min(samples)

    rows = [
        ["compiled (plan once)", round(compiled.mean * 1000, 1)],
        ["interpreted (plans cached)", round(cached.mean * 1000, 1)],
        ["interpreted (cold caches per call)", round(no_cache_first * 1000, 1)],
    ]
    table = render_table(["variant", "ms"], rows,
                         "Ablation: plan caching in the interpreter "
                         f"(walk, {STEPS} steps)")
    write_artifact("ablation_plancache.txt", table)

    assert compiled.minimum < cached.minimum
    # Re-planning cost exists but is one-off per statement, so the cold run
    # still lands well above the compiled variant.
    assert no_cache_first > compiled.minimum
