"""MVCC transactions: what the version-chained heap costs, and what
batching commits buys.

The storage refactor replaced in-place row mutation with version chains
(xmin/xmax stamps checked against a snapshot on every scan).  Two claims
keep that refactor honest:

* **commit throughput**: ~2000 single-row INSERTs, three ways — one
  implicit transaction per statement (autocommit), one explicit
  ``BEGIN ... COMMIT`` block around the whole batch (one snapshot, one
  commit), and autocommit against a durable on-disk WAL (one
  ``fsync`` per commit).  Batching must not be slower than autocommit;
  the durable column shows the real price of the fsync-per-commit
  durability contract, including the cost of replaying the log on
  reopen.
* **version-chain scan overhead**: a warm ``SELECT count(v)`` over a
  50k-row table vs. the same query with ``HeapTable.rows``
  monkeypatched to return a plain pre-materialized list — i.e. the
  pre-MVCC storage layout with every visibility check deleted.
  Acceptance gate: warm MVCC scans stay within **1.3x** of the plain
  list.  (The cold number — first scan after a write, which pays one
  full visibility pass to rebuild the cache — is reported alongside,
  unasserted.)

``BENCH_txn.json`` is emitted for the cross-PR perf trajectory.
"""

from __future__ import annotations

import time

import repro.sql.storage as storage_mod
from repro.bench.harness import render_table
from repro.sql import Database

COMMITS = 2_000          # single-row INSERT commits per in-memory mode
DURABLE_COMMITS = 400    # per-commit fsync makes each one far pricier
SCAN_ROWS = 50_000
SCAN_REPS = 30

INSERT = "INSERT INTO tally VALUES ($1, $2)"
SCAN = "SELECT count(v) FROM big"


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_commit_throughput_and_scan_overhead(tmp_path, write_artifact,
                                             write_json):
    # -- commit throughput: autocommit vs one explicit block ------------
    db = Database(profile=False)
    db.execute("CREATE TABLE tally(k int, v int)")
    conn = db.connect()

    def run_autocommit():
        for i in range(COMMITS):
            db.execute(INSERT, [i, i * 3])

    def run_batched():
        conn.execute("BEGIN")
        for i in range(COMMITS):
            conn.execute(INSERT, [i, i * 3])
        conn.execute("COMMIT")

    run_autocommit()                       # steady state: plan cached
    db.execute("DELETE FROM tally")
    autocommit_s = _time(run_autocommit)
    batched_s = _time(run_batched)
    assert db.query_value("SELECT count(k) FROM tally") == 2 * COMMITS
    batched_speedup = autocommit_s / batched_s

    # -- durable autocommit: every commit fsyncs a WAL record -----------
    path = str(tmp_path / "bench_txn.wal")
    ddb = Database(path=path, profile=False)
    ddb.execute("CREATE TABLE tally(k int, v int)")

    def run_durable():
        for i in range(DURABLE_COMMITS):
            ddb.execute(INSERT, [i, i * 3])

    durable_s = _time(run_durable)
    ddb.wal.close()
    # Reopen replays the log — the durability contract, timed too.
    start = time.perf_counter()
    rdb = Database(path=path)
    replay_s = time.perf_counter() - start
    assert rdb.query_value("SELECT count(k) FROM tally") == DURABLE_COMMITS
    rdb.wal.close()

    # -- version-chain scan overhead vs a plain-list heap ---------------
    sdb = Database(profile=False)
    sdb.execute("CREATE TABLE big(k int, v int)")
    table = sdb.catalog.get_table("big")
    table.insert_many([(i, (i * 31) % 1000) for i in range(SCAN_ROWS)])
    expected = sdb.execute(SCAN).scalar()   # warm: plan + vis cache built

    def run_scan():
        for _ in range(SCAN_REPS):
            sdb.execute(SCAN)

    run_scan()
    mvcc_s = _time(run_scan)

    # Cold: every scan pays a full visibility pass to rebuild the cache
    # (the first-read-after-write path).  Informational only.
    def run_scan_cold():
        for _ in range(SCAN_REPS):
            table._vis_cache = None
            sdb.execute(SCAN)

    cold_s = _time(run_scan_cold)

    # Baseline: the pre-MVCC layout — rows as one plain list, no
    # versions, no snapshots, no visibility anywhere on the read path.
    plain_rows = list(table.rows)
    original_rows = storage_mod.HeapTable.rows
    try:
        storage_mod.HeapTable.rows = property(lambda self: plain_rows)
        assert sdb.execute(SCAN).scalar() == expected
        run_scan()
        plain_s = _time(run_scan)
    finally:
        storage_mod.HeapTable.rows = original_rows
    assert sdb.execute(SCAN).scalar() == expected
    overhead = mvcc_s / plain_s
    cold_overhead = cold_s / plain_s

    rows_table = [
        [f"autocommit x {COMMITS}", round(autocommit_s * 1e6 / COMMITS, 1)],
        [f"one BEGIN..COMMIT x {COMMITS}",
         round(batched_s * 1e6 / COMMITS, 1)],
        ["  speedup vs autocommit", round(batched_speedup, 2)],
        [f"durable WAL autocommit x {DURABLE_COMMITS}",
         round(durable_s * 1e6 / DURABLE_COMMITS, 1)],
        [f"  replay {DURABLE_COMMITS} commits on reopen (total ms)",
         round(replay_s * 1e3, 1)],
        [f"warm scan, {SCAN_ROWS} rows (MVCC)",
         round(mvcc_s * 1e6 / SCAN_REPS, 1)],
        [f"warm scan, {SCAN_ROWS} rows (plain list)",
         round(plain_s * 1e6 / SCAN_REPS, 1)],
        ["  MVCC overhead (x, gate <= 1.3)", round(overhead, 3)],
        ["cold scan: rebuild visibility cache",
         round(cold_s * 1e6 / SCAN_REPS, 1)],
        ["  cold overhead (x, unasserted)", round(cold_overhead, 2)],
    ]
    write_artifact(
        "bench_txn.txt",
        render_table(["configuration", "us/op"], rows_table,
                     title=f"MVCC transactions: {COMMITS} commits, "
                           f"{SCAN_ROWS}-row scans"))
    write_json("txn", {
        "commits": COMMITS,
        "durable_commits": DURABLE_COMMITS,
        "scan_rows": SCAN_ROWS,
        "scan_reps": SCAN_REPS,
        "timings_s": {
            "commit_autocommit": autocommit_s,
            "commit_batched": batched_s,
            "commit_durable": durable_s,
            "wal_replay": replay_s,
            "scan_warm_mvcc": mvcc_s,
            "scan_warm_plain": plain_s,
            "scan_cold_mvcc": cold_s,
        },
        "speedups": {
            "batched_vs_autocommit": batched_speedup,
        },
        "overheads": {
            "scan_warm_mvcc_vs_plain": overhead,
            "scan_cold_mvcc_vs_plain": cold_overhead,
        },
        "ops_per_s": {
            "commit_autocommit": COMMITS / autocommit_s,
            "commit_batched": COMMITS / batched_s,
            "commit_durable": DURABLE_COMMITS / durable_s,
        },
    })

    # Acceptance gates: batching commits must never cost meaningfully
    # more than paying per-statement transaction setup/commit (the two
    # run within a few percent of each other, so allow measurement
    # noise), and the warm read path must stay within 1.3x of a
    # visibility-free plain list.
    assert batched_s <= autocommit_s * 1.15, (
        f"batched block slower than autocommit "
        f"({autocommit_s * 1e3:.0f} ms -> {batched_s * 1e3:.0f} ms)")
    assert overhead <= 1.3, (
        f"warm version-chain scan overhead {overhead:.2f}x > 1.3x "
        f"({plain_s * 1e3:.1f} ms -> {mvcc_s * 1e3:.1f} ms)")
