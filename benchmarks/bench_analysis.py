"""Volatility inference widening batched-UDF execution, plus analyzer cost.

Before the static analyzer, the planner's batching eligibility test
(``planner._batchable``) had to treat any user-defined call in argument
position as potentially volatile: ``SELECT f_c(g(x)) FROM t`` fell back
to the per-row correlated-subquery path even when ``g`` was a one-line
pure helper, because nothing could *prove* it pure.  Volatility
inference (repro.analysis.volatility) closes that gap: ``g``'s body is
classified IMMUTABLE / no-raise / no-loop, ``column_bindings`` accepts
the argument expression, and the loop-heavy outer function runs as one
set-oriented trampoline.

The A/B here isolates exactly that knowledge.  Both variants run the
same query with batching enabled; the baseline pins ``g`` to VOLATILE
(the planner's only safe assumption pre-analyzer), the contender lets
inference run.  The only difference between the two plans is whether
the analyzer's verdict widened batching.

Asserted (the PR's acceptance criteria):

* inference-widened batching beats the pessimistic per-row path >= 5x,
* EXPLAIN shows ``BatchedUdf`` with ``volatility=immutable`` for the
  widened plan and no ``BatchedUdf`` for the pessimistic one,
* both plans return identical results,
* the analyzer itself is cheap: a full ``CHECK FUNCTION ALL`` sweep
  over the paper workloads stays under 500 ms per function.
"""

from __future__ import annotations

import time

from repro.analysis import analyze_function
from repro.bench.harness import render_table, time_query
from repro.compiler import compile_plsql
from repro.sql import Database

ROWS = 10_000

#: The loop-heavy outer function (compiled; carries a batched Qf).
OUTER = """
CREATE FUNCTION tetra(n int) RETURNS int AS $$
DECLARE s int := 0; q int := 0; i int := 1;
BEGIN
  WHILE i <= n LOOP
    s := s + i;
    q := q + s;
    i := i + 1;
  END LOOP;
  RETURN q;
END;
$$ LANGUAGE plpgsql"""

#: The inner helper: interpreted PL/pgSQL, no declared volatility — only
#: the analyzer can prove it pure.
INNER = """
CREATE FUNCTION shim(n int) RETURNS int AS $$
BEGIN
  RETURN n + 1;
END;
$$ LANGUAGE plpgsql"""

QUERY = "SELECT tetra_c(shim(x)) FROM t"


def _build_db() -> Database:
    db = Database(profile=False)
    db.execute("SET check_function_bodies = off")
    db.execute("CREATE TABLE t(x int)")
    table = db.catalog.get_table("t")
    for i in range(ROWS):
        table.insert((i % 20 + 1,))
    db.execute(INNER)
    compile_plsql(OUTER, db).register(db, name="tetra_c")
    return db


def _set_inner_volatility(db: Database, declared) -> None:
    """Pin or unpin the helper's volatility class (pre/post-analyzer)."""
    fdef = db.catalog.get_function("shim")
    fdef.declared_volatility = declared
    fdef.reset_analysis()
    db.clear_plan_cache()


def _timed(db: Database, runs: int = 3) -> float:
    db.clear_plan_cache()
    return time_query(db, QUERY, runs=runs, warmup=1).minimum


def test_inferred_volatility_widens_batching(write_artifact, write_json,
                                             benchmark, demo):
    db = _build_db()

    # Pessimistic baseline: helper assumed volatile (pre-analyzer rule).
    _set_inner_volatility(db, "volatile")
    explain_pessimistic = db.explain(QUERY)
    pessimistic_rows = db.query_all(QUERY)
    assert "BatchedUdf" not in explain_pessimistic

    # Widened: inference proves the helper pure; the call site batches.
    _set_inner_volatility(db, None)
    explain_widened = db.explain(QUERY)
    widened_rows = db.query_all(QUERY)
    assert "BatchedUdf" in explain_widened
    assert "volatility=immutable" in explain_widened
    assert widened_rows == pessimistic_rows

    _set_inner_volatility(db, "volatile")
    pessimistic_s = _timed(db, runs=1)
    _set_inner_volatility(db, None)
    widened_s = _timed(db)
    speedup = pessimistic_s / widened_s

    # Analyzer cost: a full diagnostic sweep over the paper workloads.
    functions = [fdef for fdef in demo.db.catalog.functions.values()
                 if fdef.kind != "builtin"]
    for fdef in functions:
        fdef.reset_analysis()
    start = time.perf_counter()
    diagnostics = 0
    for fdef in functions:
        diagnostics += len(analyze_function(demo.db, fdef))
    sweep_s = time.perf_counter() - start
    per_function_s = sweep_s / len(functions)

    rows = [
        ["per-row scalar path (helper assumed volatile)",
         round(pessimistic_s * 1000, 1)],
        ["batched via inferred purity", round(widened_s * 1000, 1)],
        ["speedup (widened vs pessimistic)", round(speedup, 1)],
        ["functions analyzed / diagnostics",
         f"{len(functions)} / {diagnostics}"],
        ["analyzer ms per function", round(per_function_s * 1000, 2)],
    ]
    write_artifact("bench_analysis.txt", render_table(
        ["variant", "ms (min) / count"], rows,
        title=f"f(g(x)) over a {ROWS}-row table: volatility inference "
              "unlocks the batched trampoline"))

    write_json("analysis", {
        "rows": ROWS,
        "timings_s": {
            "pessimistic_scalar": pessimistic_s,
            "widened_batched": widened_s,
            "analyzer_sweep": sweep_s,
        },
        "speedups": {"widened_batching": speedup},
        "analyzer": {
            "functions": len(functions),
            "diagnostics": diagnostics,
            "s_per_function": per_function_s,
        },
        "rows_per_s": {"widened_batched": ROWS / widened_s},
    })

    assert speedup >= 5.0, \
        f"inference-widened batching only {speedup:.1f}x faster"
    assert per_function_s < 0.5, \
        f"analyzer too slow: {per_function_s * 1000:.0f} ms per function"

    _set_inner_volatility(db, None)
    benchmark.pedantic(lambda: db.query_all(QUERY), rounds=3, iterations=1)
