"""Prepared statements and bulk parameter binding: the session surface's
claim to the paper's cost model.

Section 1 splits statement cost into parse/plan (once) and
ExecutorStart/Run/End (per execution).  A :class:`PreparedStatement` handle
is that split made explicit at the client surface: the plan is built once
and every ``EXECUTE`` pays only instantiation + pulling.  This benchmark
pins the claim with numbers:

* **point queries**: a 10k-iteration parameterized point-query loop over an
  indexed 10k-row table — prepared handle vs. uncached text execution
  (``SET plan_cache_size = 0``: every call re-parses and re-plans), with
  the text-plan-cache path as the middle reference.  Acceptance gate:
  prepared >= 5x over uncached.
* **bulk INSERT**: ``Cursor.executemany`` (source planned once, one
  ``insert_many`` / index-maintenance pass per call) vs. a loop of
  single-row INSERT statements.

``BENCH_prepared.json`` is emitted for the cross-PR perf trajectory.
"""

from __future__ import annotations

import time

from repro.bench.harness import render_table
from repro.sql import Database

ROWS = 10_000
LOOKUPS = 10_000
BULK_ROWS = 2_000

POINT = "SELECT v FROM pts WHERE id >= $1 AND id <= $1"
INSERT = "INSERT INTO load VALUES ($1, $2)"


def _build_db() -> Database:
    db = Database(profile=False)
    db.execute("CREATE TABLE pts(id int, v int)")
    db.catalog.get_table("pts").insert_many(
        [(i, (i * 7919) % ROWS) for i in range(ROWS)])
    db.execute("CREATE INDEX pts_id ON pts(id)")
    db.execute("CREATE TABLE load(k int, v int)")
    db.execute("CREATE INDEX load_k ON load(k)")
    return db


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_prepared_beats_uncached_text(write_artifact, write_json):
    db = _build_db()
    conn = db.connect()
    ps = conn.prepare(POINT, name="point")

    # Sanity: all three execution modes agree before anything is timed.
    db.execute("SET plan_cache_size = 0")
    for probe in (0, 1, ROWS // 2, ROWS - 1):
        uncached_row = db.execute(POINT, [probe]).rows
        assert ps.execute([probe]).rows == uncached_row
    db.execute("RESET plan_cache_size")
    assert db.execute(POINT, [7]).rows == ps.execute([7]).rows

    def run_prepared():
        for i in range(LOOKUPS):
            ps.execute([i % ROWS])

    def run_text():
        for i in range(LOOKUPS):
            db.execute(POINT, [i % ROWS])

    # Steady state first (index built, handle planned), then time.
    run_prepared()
    prepared_s = _time(run_prepared)
    cached_s = _time(run_text)           # text path, plan cache warm
    db.execute("SET plan_cache_size = 0")
    uncached_s = _time(run_text)         # re-parse + re-plan per call
    db.execute("RESET plan_cache_size")
    prepared_speedup = uncached_s / prepared_s
    cached_speedup = uncached_s / cached_s

    # Bulk INSERT: executemany's single insert_many per call vs. a loop of
    # single-row INSERTs (each parsed, planned, and index-maintained alone).
    cur = conn.cursor()
    sets = [(i, i * 3) for i in range(BULK_ROWS)]

    def run_executemany():
        cur.executemany(INSERT, sets)

    def run_loop():
        for params in sets:
            db.execute(INSERT, params)

    executemany_s = _time(run_executemany)
    loop_s = _time(run_loop)
    assert cur.rowcount == BULK_ROWS
    assert db.query_value("SELECT count(*) FROM load") == 2 * BULK_ROWS
    bulk_speedup = loop_s / executemany_s

    per_call = 1e6 / LOOKUPS
    rows_table = [
        ["uncached text (plan_cache_size = 0)",
         round(uncached_s * per_call, 1)],
        ["text + statement plan cache", round(cached_s * per_call, 1)],
        ["  speedup vs uncached", round(cached_speedup, 1)],
        ["PreparedStatement handle", round(prepared_s * per_call, 1)],
        ["  speedup vs uncached", round(prepared_speedup, 1)],
        [f"looped INSERT x {BULK_ROWS}",
         round(loop_s * 1e6 / BULK_ROWS, 1)],
        [f"executemany x {BULK_ROWS}",
         round(executemany_s * 1e6 / BULK_ROWS, 1)],
        ["  speedup", round(bulk_speedup, 1)],
    ]
    write_artifact(
        "bench_prepared.txt",
        render_table(["configuration", "us/op"], rows_table,
                     title=f"Prepared execution: {LOOKUPS} point queries "
                           f"over {ROWS} rows"))
    write_json("prepared", {
        "rows": ROWS,
        "lookups": LOOKUPS,
        "bulk_rows": BULK_ROWS,
        "timings_s": {
            "point_uncached_text": uncached_s,
            "point_cached_text": cached_s,
            "point_prepared": prepared_s,
            "insert_loop": loop_s,
            "insert_executemany": executemany_s,
        },
        "speedups": {
            "prepared_vs_uncached": prepared_speedup,
            "cached_text_vs_uncached": cached_speedup,
            "executemany_vs_loop": bulk_speedup,
        },
        "ops_per_s": {
            "point_prepared": LOOKUPS / prepared_s,
            "point_uncached_text": LOOKUPS / uncached_s,
            "insert_executemany": BULK_ROWS / executemany_s,
        },
    })

    # Acceptance gates: the PR's >= 5x for prepared execution over
    # uncached text on the 10k-iteration loop, and executemany clearly
    # ahead of row-at-a-time INSERT.
    assert prepared_speedup >= 5, (
        f"prepared speedup {prepared_speedup:.1f}x < 5x "
        f"({uncached_s * 1e3:.0f} ms -> {prepared_s * 1e3:.0f} ms)")
    assert bulk_speedup >= 2, (
        f"executemany speedup {bulk_speedup:.1f}x < 2x "
        f"({loop_s * 1e3:.0f} ms -> {executemany_s * 1e3:.0f} ms)")
