"""Ablation — Froid-style chains vs the full pipeline on loop-free input,
plus the intermediate recursive-UDF form the paper warns about.

Three claims from Sections 1-2 are checked:

1. On loop-free functions, our pipeline degenerates to exactly a Froid
   chain (no WITH RECURSIVE in the emitted SQL) — same query, same cost.
2. Froid cannot compile iterative functions (LoopNotSupportedError).
3. The intermediate *directly recursive SQL UDF* form is dramatically
   slower than the CTE (per-call plan instantiation) and hits the stack
   depth limit at modest iteration counts — the reason the paper pushes on
   to WITH RECURSIVE.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import render_table, time_query
from repro.compiler import froid_compile
from repro.sql.errors import ExecutionError, LoopNotSupportedError
from repro.workloads import WORKLOADS

LOOPFREE_SOURCE = """
CREATE FUNCTION score(x int, lo int, hi int) RETURNS int AS $$
DECLARE
  bounded int;
BEGIN
  IF x < lo THEN
    bounded = lo;
  ELSIF x > hi THEN
    bounded = hi;
  ELSE
    bounded = x;
  END IF;
  RETURN bounded * bounded + (SELECT count(*) FROM bench_calls AS b);
END;
$$ LANGUAGE PLPGSQL
"""


def test_ablation_froid_report(demo, write_artifact, benchmark):
    db = demo.db
    from repro.bench.harness import ensure_calls_table
    ensure_calls_table(db, 16)

    if db.catalog.get_function("score") is None:
        db.execute(LOOPFREE_SOURCE)
    froid = froid_compile(LOOPFREE_SOURCE, db)
    froid.register(db, name="score_froid")

    # 1. Loop-free: no recursion machinery in the emitted SQL.
    sql = froid.sql()
    assert "RECURSIVE" not in sql.upper()

    def froid_call():
        db.execute("SELECT count(score_froid(b.i, 0, 10)) "
                   "FROM bench_calls AS b")

    benchmark.pedantic(froid_call, rounds=3, iterations=1)

    interp = time_query(db, "SELECT count(score(b.i, 0, 10)) "
                            "FROM bench_calls AS b", runs=5)
    compiled = time_query(db, "SELECT count(score_froid(b.i, 0, 10)) "
                              "FROM bench_calls AS b", runs=5)

    # 2. Froid rejects every iterative workload function.
    rejected = []
    for name, source in WORKLOADS.items():
        with pytest.raises(LoopNotSupportedError):
            froid_compile(source, db)
        rejected.append(name)

    # 3. The recursive-UDF intermediate form: slow and depth-limited.
    fib = demo.compiled["fibonacci"]
    wrapper = fib.register_udf_form(db)
    udf_time = time_query(db, f"SELECT {wrapper}(60)", runs=3)
    cte_time = time_query(db, "SELECT fibonacci_c(60)", runs=3)
    with pytest.raises(ExecutionError, match="stack depth"):
        db.execute(f"SELECT {wrapper}(100000)")

    rows = [
        ["score (loop-free), interpreted", round(interp.mean * 1000, 2)],
        ["score (loop-free), Froid chain", round(compiled.mean * 1000, 2)],
        ["fibonacci(60), recursive SQL UDF", round(udf_time.mean * 1000, 2)],
        ["fibonacci(60), WITH RECURSIVE", round(cte_time.mean * 1000, 2)],
    ]
    table = render_table(["variant", "ms"], rows,
                         "Ablation: Froid baseline and the UDF intermediate "
                         "form")
    table += ("\nFroid rejected (loops): " + ", ".join(rejected)
              + f"\nrecursive UDF at depth 100000: stack depth limit "
                f"(max_udf_depth={db.max_udf_depth})")
    write_artifact("ablation_froid.txt", table)

    # The UDF form pays per-call instantiation: visibly slower than the CTE.
    assert udf_time.minimum > cte_time.minimum
