"""Cancellation latency and WAL replay with checkpointing.

Two robustness numbers the governance layer promises:

* **Cancel latency** — a runaway ``WITH RECURSIVE`` counter (minutes of
  work if left alone) is running over the wire; from the moment the
  out-of-band CancelRequest is sent, how long until the worker slot is
  free again (the client holds the ErrorResponse)?  The token is polled
  per recursion iteration, so this measures the full trip: fresh TCP
  connection, key lookup, cross-thread trip, unwind, statement-level
  rollback, ErrorResponse.  Same gate for the ``statement_timeout``
  overshoot (deadline to error, minus the deadline itself).
  Acceptance: median < 100 ms for both.

* **Replay speedup** — a 50k-row-update history replayed cold vs the
  same history compacted by ``CHECKPOINT`` first.  Replay is O(history)
  without compaction and O(live data) with it; the gate (>= 5x) is what
  "recovery time stays bounded" means concretely.

``BENCH_cancel.json`` records both for the cross-PR perf trajectory.
"""

from __future__ import annotations

import shutil
import threading
import time

from repro.bench.harness import render_table
from repro.server import ServerError, ServerThread, connect
from repro.sql import Database

RUNAWAY = ("WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
           "SELECT n + 1 FROM r WHERE n < 2000000000) "
           "SELECT count(*) FROM r")

CANCEL_ROUNDS = 5
TIMEOUT_MS = 50
REPLAY_ROWS = 500
REPLAY_SWEEPS = 100           # full-table updates: 50k row-updates logged


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _cancel_latency(address) -> float:
    """One round: seconds from CancelRequest to the freed worker slot."""
    client = connect(*address)
    finished = []

    def run_query():
        try:
            client.query(RUNAWAY)
        except ServerError as error:
            assert error.sqlstate == "57014", error
            finished.append(time.perf_counter())

    runner = threading.Thread(target=run_query)
    runner.start()
    time.sleep(0.3)           # let the query reach its hot loop
    cancel_sent = time.perf_counter()
    client.cancel()
    runner.join(timeout=30)
    assert finished, "query was never canceled"
    # The slot really is free: the same session answers again.
    assert client.query_rows("SELECT 1") == [("1",)]
    client.close()
    return finished[0] - cancel_sent


def _timeout_overshoot(address) -> float:
    """One round: seconds past the statement_timeout deadline."""
    client = connect(*address)
    client.query(f"SET statement_timeout = {TIMEOUT_MS}")
    started = time.perf_counter()
    try:
        client.query(RUNAWAY)
        raise AssertionError("runaway query was never timed out")
    except ServerError as error:
        assert error.sqlstate == "57014", error
    elapsed = time.perf_counter() - started
    client.close()
    return elapsed - TIMEOUT_MS / 1000.0


def _build_history(path: str) -> None:
    db = Database(profile=False, path=path)
    db.execute("SET wal_checkpoint_interval = 0")  # keep the raw history
    db.execute("CREATE TABLE t(id int, v int)")
    db.execute("INSERT INTO t VALUES " +
               ", ".join(f"({i}, 0)" for i in range(REPLAY_ROWS)))
    for _ in range(REPLAY_SWEEPS):
        db.execute("UPDATE t SET v = v + 1")
    db.wal.close()


def _timed_open(path: str) -> tuple[float, Database]:
    started = time.perf_counter()
    db = Database(profile=False, path=path)
    return time.perf_counter() - started, db


def test_cancel_latency_and_replay_speedup(tmp_path, write_artifact,
                                           write_json):
    db = Database(profile=False)
    with ServerThread(db, workers=2) as address:
        cancel_s = [_cancel_latency(address) for _ in range(CANCEL_ROUNDS)]
        timeout_s = [_timeout_overshoot(address)
                     for _ in range(CANCEL_ROUNDS)]
    cancel_ms = _median(cancel_s) * 1000.0
    timeout_ms = _median(timeout_s) * 1000.0

    # -- replay: raw 50k-update history vs checkpointed snapshot --------
    raw = str(tmp_path / "raw.wal")
    _build_history(raw)
    compacted = str(tmp_path / "compacted.wal")
    shutil.copyfile(raw, compacted)

    raw_replay_s, db_raw = _timed_open(raw)
    assert db_raw.query_value("SELECT sum(v) FROM t") == \
        REPLAY_ROWS * REPLAY_SWEEPS
    db_raw.wal.close()

    ckpt_db = Database(profile=False, path=compacted)
    records = ckpt_db.wal.checkpoint()
    ckpt_db.wal.close()
    ckpt_replay_s, db_ckpt = _timed_open(compacted)
    assert db_ckpt.query_value("SELECT sum(v) FROM t") == \
        REPLAY_ROWS * REPLAY_SWEEPS
    db_ckpt.wal.close()
    speedup = raw_replay_s / ckpt_replay_s

    rows_table = [
        ["CancelRequest -> freed slot (median)", f"{cancel_ms:.1f} ms"],
        [f"statement_timeout={TIMEOUT_MS}ms overshoot (median)",
         f"{timeout_ms:.1f} ms"],
        [f"replay {REPLAY_ROWS}x{REPLAY_SWEEPS} update history",
         f"{raw_replay_s * 1000:.0f} ms"],
        [f"replay after CHECKPOINT ({records} records)",
         f"{ckpt_replay_s * 1000:.0f} ms"],
        ["replay speedup", f"{speedup:.1f}x"],
    ]
    write_artifact(
        "bench_cancel.txt",
        render_table(["metric", "value"], rows_table,
                     title="Cancellation latency and checkpointed replay"))
    write_json("cancel", {
        "cancel_rounds": CANCEL_ROUNDS,
        "cancel_latency_ms_median": cancel_ms,
        "timeout_overshoot_ms_median": timeout_ms,
        "replay_rows": REPLAY_ROWS,
        "replay_sweeps": REPLAY_SWEEPS,
        "replay_raw_s": raw_replay_s,
        "replay_checkpointed_s": ckpt_replay_s,
        "checkpoint_records": records,
        "speedups": {
            "replay_checkpointed_vs_raw": speedup,
        },
    })

    # Acceptance gates: a stuck slot frees within 100 ms either way, and
    # compaction keeps recovery O(live data).
    assert cancel_ms < 100, f"cancel latency {cancel_ms:.1f} ms >= 100 ms"
    assert timeout_ms < 100, \
        f"statement_timeout overshoot {timeout_ms:.1f} ms >= 100 ms"
    assert speedup >= 5, (
        f"checkpointed replay only {speedup:.1f}x faster "
        f"({raw_replay_s:.3f}s -> {ckpt_replay_s:.3f}s)")
