"""Set-oriented compiled-UDF execution vs the per-row scalar path.

The paper compiles a PL/SQL function f into one ``WITH RECURSIVE`` query
Qf.  The engine's scalar finalization splices Qf into the calling query as
a *correlated scalar subquery*, so ``SELECT f(x) FROM t`` re-materializes
the whole recursive trampoline once per input row.  The ``BatchedUdf``
operator instead seeds one trampoline from all 10,000 rows at once — the
working set carries a caller row key ``k`` — and advances every pending
call in lock-step (``planner.batch_compiled``, on by default).

The workload is a loop-heavy integer function over a 10k-row table with
realistically skewed argument values (20 distinct), the shape the paper's
Figure 10/11 sweeps use.  Set-orientation wins twice: the trampoline pays
its per-step machinery once per step for the whole relation instead of
once per call, and — because the whole argument relation is in hand and
batching requires non-volatile functions — rows with identical arguments
share one activation (``planner.batch_dedup``).

Asserted here (the PR's acceptance criteria):

* the batched trampoline beats the per-row scalar path by >= 10x on the
  10k-row workload (it also stays >= 5x with argument dedup disabled,
  i.e. running all 10,000 activations),
* EXPLAIN names the ``BatchedUdf`` operator for the batched plan and not
  for the scalar one,
* both strategies of the operator ("machine" and "sql") and the scalar
  path return identical results.
"""

from __future__ import annotations

from repro.bench.harness import render_table, time_query
from repro.compiler import compile_plsql
from repro.sql import Database
from repro.sql.profiler import (BATCHED_UDF_BATCHES, BATCHED_UDF_DISTINCT,
                                BATCHED_UDF_ROWS, TRAMPOLINE_ITERATIONS)

ROWS = 10_000

#: Two running accumulators: every loop iteration is three let bindings,
#: which cost the scalar template three LATERAL rescans per call per
#: iteration and the batched machine three expression evaluations.
TETRA = """
CREATE FUNCTION tetra(n int) RETURNS int AS $$
DECLARE s int := 0; q int := 0; i int := 1;
BEGIN
  WHILE i <= n LOOP
    s := s + i;
    q := q + s;
    i := i + 1;
  END LOOP;
  RETURN q;
END;
$$ LANGUAGE plpgsql"""

QUERY = "SELECT tetra_c(x) FROM t"


def _build_db() -> Database:
    db = Database(profile=False)
    db.execute("CREATE TABLE t(x int)")
    table = db.catalog.get_table("t")
    for i in range(ROWS):
        table.insert((i % 20 + 1,))
    compile_plsql(TETRA, db).register(db, name="tetra_c")
    return db


def _timed(db: Database, batched: bool, strategy: str = "machine",
           dedup: bool = True, runs: int = 3) -> float:
    db.planner.batch_compiled = batched
    db.planner.batch_strategy = strategy
    db.planner.batch_dedup = dedup
    db.clear_plan_cache()
    return time_query(db, QUERY, runs=runs, warmup=1).minimum


def test_batched_udf_beats_scalar_path(write_artifact, write_json, benchmark):
    db = _build_db()

    # Sanity: all three evaluation paths agree before we time anything.
    db.planner.batch_compiled = True
    db.planner.batch_strategy = "machine"
    db.clear_plan_cache()
    machine_rows = db.query_all(QUERY)
    explain_batched = db.explain(QUERY)
    db.planner.batch_strategy = "sql"
    db.clear_plan_cache()
    sql_rows = db.query_all(QUERY)
    db.planner.batch_compiled = False
    db.clear_plan_cache()
    scalar_rows = db.query_all(QUERY)
    explain_scalar = db.explain(QUERY)
    assert machine_rows == sql_rows == scalar_rows
    assert "BatchedUdf" in explain_batched
    assert "BatchedUdf" not in explain_scalar

    machine_s = _timed(db, batched=True, strategy="machine")
    raw_s = _timed(db, batched=True, strategy="machine", dedup=False)
    sql_s = _timed(db, batched=True, strategy="sql", runs=1)
    scalar_s = _timed(db, batched=False, runs=1)
    speedup = scalar_s / machine_s
    raw_speedup = scalar_s / raw_s

    # One instrumented run for the new profiler counters.
    db.planner.batch_compiled = True
    db.planner.batch_strategy = "machine"
    db.planner.batch_dedup = True
    db.clear_plan_cache()
    db.profiler.enabled = True
    db.profiler.reset()
    db.query_all(QUERY)
    counts = dict(db.profiler.counts)
    db.profiler.enabled = False
    assert counts[BATCHED_UDF_BATCHES] == 1
    assert counts[BATCHED_UDF_ROWS] == ROWS
    assert counts[BATCHED_UDF_DISTINCT] == 20
    # One lock-step trampoline: iterations equal the *longest* call, not
    # the sum over calls (20 loop iterations + the final empty check).
    assert counts[TRAMPOLINE_ITERATIONS] <= 25

    rows = [
        ["scalar subquery per row (seed path)", round(scalar_s * 1000, 1)],
        ["batched Qf via generic executor (batch_strategy=sql)",
         round(sql_s * 1000, 1)],
        ["batched, trampoline machine, no arg dedup",
         round(raw_s * 1000, 1)],
        ["batched, trampoline machine (default)",
         round(machine_s * 1000, 1)],
        ["speedup (default batched vs scalar)", round(speedup, 1)],
        ["speedup (no-dedup batched vs scalar)", round(raw_speedup, 1)],
        ["trampoline iterations (batched)", counts[TRAMPOLINE_ITERATIONS]],
        ["batch size / distinct activations",
         f"{counts[BATCHED_UDF_ROWS]} / {counts[BATCHED_UDF_DISTINCT]}"],
    ]
    write_artifact("bench_batched_udf.txt", render_table(
        ["variant", "ms (min) / count"], rows,
        title=f"Compiled UDF over a {ROWS}-row table: "
              "one trampoline vs one per row"))

    write_json("batched_udf", {
        "rows": ROWS,
        "timings_s": {
            "scalar_per_row": scalar_s,
            "batched_sql_strategy": sql_s,
            "batched_machine_no_dedup": raw_s,
            "batched_machine": machine_s,
        },
        "speedups": {"batched": speedup, "batched_no_dedup": raw_speedup},
        "rows_per_s": {"batched_machine": ROWS / machine_s},
    })

    assert speedup >= 10.0, f"batched trampoline only {speedup:.1f}x faster"
    assert raw_speedup >= 5.0, \
        f"no-dedup trampoline only {raw_speedup:.1f}x faster"

    db.planner.batch_compiled = True
    db.planner.batch_strategy = "machine"
    db.clear_plan_cache()
    benchmark.pedantic(lambda: db.query_all(QUERY), rounds=3, iterations=1)
