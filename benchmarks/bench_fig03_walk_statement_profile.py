"""Figure 3 — per-statement run-time profile of walk() with f→Qi overhead.

The paper's right margin annotates each statement of walk() with its share
of total run time (Q2's assignment to ``location`` dominating at 54.02 %)
and blackens the portion spent in f→Qi context switches (plan
instantiation/teardown), totalling >35 %.

Shape criteria: the three embedded-query assignments dominate the profile;
each of them carries nonzero overhead share; the plain arithmetic
statements are cheap.
"""

from __future__ import annotations

from repro.bench.harness import render_table, statement_profile

SQL = "SELECT walk(row(0,0)::coord, $1, $2, $3)"
PARAMS = [10**9, -(10**9), 300]


def build_profile(db):
    rows = statement_profile(db, SQL, PARAMS)
    table = render_table(
        ["statement", "% of run time", "f->Qi overhead %"],
        [(label, round(total, 2), round(overhead, 2))
         for label, total, overhead in rows],
        "Figure 3: per-statement profile of walk()")
    return table, rows


def test_fig03_report(demo, write_artifact, benchmark):
    db = demo.db
    was_enabled = db.profiler.enabled
    benchmark.pedantic(lambda: statement_profile(db, SQL, PARAMS),
                       rounds=2, iterations=1)
    try:
        table, rows = build_profile(db)
    finally:
        db.profiler.enabled = was_enabled
    write_artifact("fig03_walk_statement_profile.txt", table)

    by_label = {label: (total, overhead) for label, total, overhead in rows}
    query_rows = [(label, total, overhead)
                  for label, total, overhead in rows if "SELECT" in label]
    assert len(query_rows) >= 3, "expected the three embedded queries Q1..Q3"
    # The embedded queries dominate walk's run time ...
    assert sum(total for _, total, _ in query_rows) > 60.0
    # ... and each pays f->Qi overhead (the black bar sections).
    for label, _total, overhead in query_rows:
        assert overhead > 0.0, label
    # Q2 (the assignment to `location`) is the most expensive statement.
    top = max(rows, key=lambda r: r[1])
    assert top[0].startswith("location"), top
