"""Table 1 — run time share per phase during PL/pgSQL evaluation.

Paper (PostgreSQL 11.3):

    function    Exec.Start  Exec.Run  Exec.End  Interp
    walk             30.89     55.13      4.36    9.63
    parse            13.84     68.52      2.20   15.62
    traverse         31.80     35.82      6.03   26.35
    fibonacci            0     90.45         0    9.55

Shape criteria reproduced here: query-bearing functions (walk, parse,
traverse) show substantial Exec·Start + Exec·End — the f→Qi context-switch
overhead — while fibonacci, whose expressions all take the interpreter's
fast path, shows exactly zero in both columns.
"""

from __future__ import annotations

from repro.bench.harness import (TABLE1_PHASES, profile_function_call,
                                 render_table)
from repro.workloads import make_parseable_input

#: (label, sql, params) per Table 1 row; sizes scaled from the paper's.
CASES = [
    ("walk", "SELECT walk(row(0,0)::coord, $1, $2, $3)",
     [10**9, -(10**9), 300]),
    ("parse", "SELECT parse($1)", [make_parseable_input(600, seed=11)]),
    ("traverse", "SELECT traverse(0, $1)", [600]),
    ("fibonacci", "SELECT fibonacci($1)", [3000]),
]


def build_table(db) -> tuple[str, list]:
    rows = []
    breakdowns = []
    for label, sql, params in CASES:
        breakdown = profile_function_call(db, sql, params, label=label)
        breakdowns.append(breakdown)
        rows.append(breakdown.row())
    headers = ["function"] + list(TABLE1_PHASES)
    text = render_table(headers, rows,
                        "Table 1: % of run time per phase (interpreted)")
    return text, breakdowns


def test_table1_report(demo, write_artifact, benchmark):
    db = demo.db
    was_enabled = db.profiler.enabled

    def profile_walk():
        return profile_function_call(db, *CASES[0][1:], label="walk")

    benchmark.pedantic(profile_walk, rounds=2, iterations=1)
    try:
        text, breakdowns = build_table(db)
    finally:
        db.profiler.enabled = was_enabled
    write_artifact("table1_profile.txt", text)

    by_name = {b.function: b for b in breakdowns}
    # fibonacci: pure fast path — no embedded-query switches, and the only
    # ExecutorStart/End cost is the (tiny, one-off) top-level query's.
    assert by_name["fibonacci"].counts.get("switch f->Q", 0) == 0
    assert by_name["fibonacci"].shares["ExecutorStart"] < 1.0
    assert by_name["fibonacci"].shares["ExecutorEnd"] < 1.0
    # Query-bearing functions pay measurable f->Qi overhead.
    for name in ("walk", "parse", "traverse"):
        overhead = (by_name[name].shares["ExecutorStart"]
                    + by_name[name].shares["ExecutorEnd"])
        assert overhead > 2.0, (name, overhead)
        assert by_name[name].counts.get("switch f->Q", 0) > 0
