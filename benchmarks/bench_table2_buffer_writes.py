"""Table 2 — buffer page writes: WITH ITERATE vs WITH RECURSIVE for parse().

Paper (input length = #iterations):

    10000:      0  vs   6132
    20000:      0  vs  24471
    30000:      0  vs  55016
    40000:      0  vs  97769
    50000:      0  vs 152729

WITH RECURSIVE materialises the whole activation trace — each row carries
the residual input string, so total bytes (hence page writes) grow
*quadratically* — while WITH ITERATE keeps only the newest activation and
writes nothing.

We measure the same metric with our 8 KiB buffer-page model.  The measured
sweep runs at 1000..5000 characters (wall-clock budget); the paper-scale
rows are additionally computed by the closed-form byte model, which on this
metric is exact (the engine charges deterministic byte counts).  Shape
criteria: ITERATE writes exactly 0 pages at every size; RECURSIVE growth is
quadratic (doubling input quadruples pages within tolerance); the modelled
counts land within a few percent of the paper's absolute numbers.
"""

from __future__ import annotations

import pytest
from conftest import parse_query

from repro.bench.harness import render_table
from repro.sql.storage import PAGE_SIZE, ROW_OVERHEAD
from repro.workloads import make_parseable_input

MEASURED_LENGTHS = [1000, 2000, 3000, 4000, 5000]
PAPER_LENGTHS = [10_000, 20_000, 30_000, 40_000, 50_000]
PAPER_RECURSIVE = {10_000: 6_132, 20_000: 24_471, 30_000: 55_016,
                   40_000: 97_769, 50_000: 152_729}


def pages_written(db, function: str, text: str) -> int:
    db.buffers.reset()
    db.execute(parse_query(function, per_call=True), [text])
    return db.buffers.pages_written


def run_row_bytes(residual_length: int) -> int:
    """Byte size of one `run` row for parse under the storage model.

    Columns: "call?" (bool) + fn (int) + cur,pos (ints) + rest (text) +
    chr (1-char text) + nxt (int) + input... — only the schema of the
    actual compiled function matters; we reproduce it from the engine by
    construction below (see test for the cross-check against measurement).
    """
    # bool + 4 ints (fn, cur, nxt, pos) + input-remainder text + 1-char chr
    # + result int slot (NULL -> 0 bytes) + row overhead.
    return (ROW_OVERHEAD + 1 + 4 * 8 + (1 + residual_length) + (1 + 1))


def modelled_pages(length: int, per_row_constant: int) -> int:
    """Closed-form page count for the RECURSIVE trace at *length* chars."""
    total = 0
    # Seed row (full input) plus one row per consumed character, plus the
    # final base-case row; residuals shrink from `length` to 0.
    for residual in range(length, -1, -1):
        total += per_row_constant + residual
    return total // PAGE_SIZE


def test_table2_report(demo, write_artifact, benchmark):
    db = demo.db

    text_2000 = make_parseable_input(2000, seed=9)
    benchmark.pedantic(lambda: pages_written(db, "parse_c", text_2000),
                       rounds=2, iterations=1)

    rows = []
    measured = {}
    for length in MEASURED_LENGTHS:
        text = make_parseable_input(length, seed=9)
        iterate_pages = pages_written(db, "parse_it", text)
        recursive_pages = pages_written(db, "parse_c", text)
        measured[length] = (iterate_pages, recursive_pages)
        rows.append([length, iterate_pages, recursive_pages, ""])

    # Calibrate the per-row constant from a measurement, then extrapolate
    # to the paper's input sizes (the byte model is deterministic).
    length0 = MEASURED_LENGTHS[-1]
    recursive0 = measured[length0][1]
    best_constant = None
    for constant in range(24, 120):
        if modelled_pages(length0, constant) == recursive0:
            best_constant = constant
            break
    assert best_constant is not None, "byte model failed to calibrate"
    for length in PAPER_LENGTHS:
        model = modelled_pages(length, best_constant)
        paper = PAPER_RECURSIVE[length]
        rows.append([length, 0, model,
                     f"paper: {paper} ({100.0 * model / paper:.0f}%)"])

    table = render_table(
        ["#iterations", "WITH ITERATE", "WITH RECURSIVE", "note"],
        rows, "Table 2: buffer page writes (measured <=5000, modelled above)")
    write_artifact("table2_buffer_writes.txt", table)

    # ITERATE never writes a page.
    assert all(m[0] == 0 for m in measured.values())
    # RECURSIVE grows quadratically: doubling input ~quadruples pages.
    ratio = measured[4000][1] / measured[2000][1]
    assert 3.0 < ratio < 5.0, ratio
    # Modelled paper-scale counts within 15% of the published numbers.
    for length in PAPER_LENGTHS:
        model = modelled_pages(length, best_constant)
        assert model == pytest.approx(PAPER_RECURSIVE[length], rel=0.15), length
