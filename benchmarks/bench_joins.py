"""Join-strategy benchmark: hash join vs the seed nested loop.

The paper's thesis is that compiling PL/SQL into plain queries lets the
relational engine optimize the workload *as queries*.  This benchmark
quantifies the first such optimization this engine grew: a 1k x 1k
equi-join runs as a build/probe hash join (O(n + m) key evaluations)
instead of the seed's nested loop (O(n * m) condition evaluations).

Asserted here (the PR's acceptance criteria):

* the hash join beats the nested-loop plan by >= 10x on the 1k x 1k
  equi-join,
* EXPLAIN names ``HashJoin`` for the equi-join and still names
  ``NestLoop`` for a non-equi join.
"""

from __future__ import annotations

from repro.bench.harness import render_table, time_query
from repro.sql import Database

ROWS = 1000

EQUI_JOIN = ("SELECT count(*), sum(a.v + b.v) "
             "FROM a JOIN b ON a.id = b.id")
NON_EQUI_JOIN = ("SELECT count(*) FROM a JOIN b "
                 "ON a.id < b.id WHERE b.id <= 3")
PUSHDOWN_JOIN = ("SELECT count(*) FROM a JOIN b ON a.id = b.id "
                 "WHERE a.v % 10 = 0 AND b.v % 10 = 0")


def _build_db() -> Database:
    db = Database(profile=False)
    db.execute("CREATE TABLE a(id int, v int)")
    db.execute("CREATE TABLE b(id int, v int)")
    for name in ("a", "b"):
        table = db.catalog.get_table(name)
        for i in range(ROWS):
            table.insert((i, i * 7 % 1000))
    return db


def _timed(db: Database, sql: str, hashjoin: bool, runs: int = 3) -> float:
    db.planner.enable_hashjoin = hashjoin
    db.planner.enable_pushdown = hashjoin
    db.clear_plan_cache()
    return time_query(db, sql, runs=runs, warmup=1).minimum


def test_hash_join_beats_nested_loop(write_artifact, write_json, benchmark):
    db = _build_db()

    # Sanity: both strategies agree before we time anything.
    db.planner.enable_hashjoin = True
    db.clear_plan_cache()
    hash_rows = db.query_all(EQUI_JOIN)
    explain_hash = db.explain(EQUI_JOIN)
    explain_non_equi = db.explain(NON_EQUI_JOIN)
    db.planner.enable_hashjoin = False
    db.planner.enable_pushdown = False
    db.clear_plan_cache()
    nested_rows = db.query_all(EQUI_JOIN)
    explain_nested = db.explain(EQUI_JOIN)
    assert hash_rows == nested_rows
    assert "HashJoin" in explain_hash
    assert "NestLoop" in explain_nested
    assert "HashJoin" not in explain_non_equi
    assert "NestLoop" in explain_non_equi

    hash_s = _timed(db, EQUI_JOIN, hashjoin=True)
    nested_s = _timed(db, EQUI_JOIN, hashjoin=False)
    speedup = nested_s / hash_s
    pushdown_hash_s = _timed(db, PUSHDOWN_JOIN, hashjoin=True)
    pushdown_nested_s = _timed(db, PUSHDOWN_JOIN, hashjoin=False)

    rows = [
        ["equi-join 1kx1k, nested loop (seed)", round(nested_s * 1000, 1)],
        ["equi-join 1kx1k, hash join", round(hash_s * 1000, 1)],
        ["speedup", round(speedup, 1)],
        ["filtered equi-join, nested loop", round(pushdown_nested_s * 1000, 1)],
        ["filtered equi-join, hash + pushdown", round(pushdown_hash_s * 1000, 1)],
    ]
    write_artifact("bench_joins.txt", render_table(
        ["plan", "ms (min)"], rows,
        title=f"Hash join vs nested loop ({ROWS}x{ROWS} rows)"))
    write_json("joins", {
        "rows": ROWS,
        "timings_s": {
            "equi_join_nested_loop": nested_s,
            "equi_join_hash": hash_s,
            "filtered_equi_join_nested_loop": pushdown_nested_s,
            "filtered_equi_join_hash_pushdown": pushdown_hash_s,
        },
        "speedups": {"equi_join": speedup},
        "rows_per_s": {"equi_join_hash": ROWS / hash_s},
    })

    assert speedup >= 10.0, f"hash join only {speedup:.1f}x faster"

    db.planner.enable_hashjoin = True
    db.planner.enable_pushdown = True
    db.clear_plan_cache()
    benchmark.pedantic(lambda: db.query_all(EQUI_JOIN), rounds=3, iterations=1)
