"""Ordered access paths: sorted-index range scans, Top-N, sort elimination
and the trampoline's per-iteration range probes.

The paper's compiled UDFs become ``WITH RECURSIVE`` plans whose trampoline
re-evaluates its access paths every iteration (Fig. 10's walk scaling), so
per-probe cost multiplies by iteration count.  This benchmark measures the
ordered-access subsystem that removes the remaining O(n) scans:

* **range + Top-N workload** (the PR's acceptance gate, asserted >= 10x):
  a selective range predicate with ``ORDER BY .. LIMIT`` over 100k rows —
  bisect-backed ``IndexRangeScan`` + bounded-heap ``TopN`` against the
  seed's SeqScan + full sort,
* **index-ordered Top-N**: ``ORDER BY .. LIMIT k`` over a declared index —
  sort elimination makes the streaming LIMIT stop after k rows,
* **trampoline probes**: a recursive CTE whose every iteration runs a
  correlated range probe — O(log n + k) per iteration instead of O(n).

EXPLAIN must name ``IndexRangeScan``, ``TopN`` and ``MergeJoin``, and the
machine-readable ``BENCH_ordered_paths.json`` is emitted for the cross-PR
perf trajectory.
"""

from __future__ import annotations

from repro.bench.harness import render_table, time_query
from repro.sql import Database

ROWS = 100_000

RANGE_TOPN = ("SELECT id, v FROM events WHERE ts >= 500000 AND ts < 508000 "
              "ORDER BY v DESC LIMIT 10")
ORDERED_TOPN = "SELECT id FROM events ORDER BY v LIMIT 10"
HOPS = 25
TRAMPOLINE = f"""
WITH RECURSIVE hop(ts, n) AS (
  SELECT 0, 0
  UNION ALL
  SELECT (SELECT min(e.ts) FROM events e
          WHERE e.ts > hop.ts + 30000 AND e.ts < hop.ts + 60000),
         hop.n + 1
  FROM hop WHERE hop.n < {HOPS} AND hop.ts IS NOT NULL
) SELECT count(*), max(n) FROM hop"""
MERGE_JOIN = ("SELECT count(*) FROM events e JOIN marks m ON e.ts = m.ts")


def _build_db() -> Database:
    db = Database(profile=False)
    db.execute("CREATE TABLE events(id int, ts int, v int)")
    events = db.catalog.get_table("events")
    for i in range(ROWS):
        # Pseudo-random but deterministic: ts a permutation-ish spread over
        # [0, 1e6), v a shuffled value domain.
        events.insert((i, (i * 7919) % 1_000_000, (i * 104729) % ROWS))
    db.execute("CREATE TABLE marks(ts int)")
    marks = db.catalog.get_table("marks")
    for i in range(2_000):
        marks.insert((((i * 7919) % 1_000_000),))
    return db


def _fast(db: Database, enabled: bool) -> None:
    db.planner.enable_rangescan = enabled
    db.planner.enable_sort_elim = enabled
    db.planner.enable_topn = enabled
    db.planner.enable_mergejoin = enabled
    db.clear_plan_cache()


def test_ordered_paths_beat_scan_and_sort(write_artifact, write_json):
    db = _build_db()

    # Sanity: both configurations agree before anything is timed.
    _fast(db, True)
    fast_rows = db.query_all(RANGE_TOPN)
    explain_range = db.explain(RANGE_TOPN)
    trampoline_fast = db.query_all(TRAMPOLINE)
    db.execute("CREATE INDEX events_v ON events(v)")
    ordered_rows = db.query_all(ORDERED_TOPN)
    explain_ordered = db.explain(ORDERED_TOPN)
    db.execute("CREATE INDEX events_ts ON events(ts)")
    db.execute("CREATE INDEX marks_ts ON marks(ts)")
    explain_merge = db.explain(MERGE_JOIN)
    merge_count = db.query_value(MERGE_JOIN)
    # TopN shows where no index serves the order.
    explain_topn = db.explain(
        "SELECT id FROM events ORDER BY v + 0 LIMIT 10")
    _fast(db, False)
    slow_rows = db.query_all(RANGE_TOPN)
    slow_ordered = db.query_all(ORDERED_TOPN)
    trampoline_slow = db.query_all(TRAMPOLINE)
    slow_merge = db.query_value(MERGE_JOIN)
    assert fast_rows == slow_rows
    assert ordered_rows == slow_ordered
    assert trampoline_fast == trampoline_slow
    assert merge_count == slow_merge
    assert "IndexRangeScan" in explain_range
    assert "TopN" in explain_topn
    assert "MergeJoin" in explain_merge
    assert "IndexRangeScan" in explain_ordered
    assert "Sort" not in explain_ordered

    # Timings.  The warmup run builds / reuses the sorted indexes, so the
    # timed runs measure steady-state probes — the trampoline regime.
    _fast(db, True)
    range_fast = time_query(db, RANGE_TOPN, runs=3, warmup=1).minimum
    ordered_fast = time_query(db, ORDERED_TOPN, runs=3, warmup=1).minimum
    tramp_fast = time_query(db, TRAMPOLINE, runs=1, warmup=1).minimum
    merge_fast = time_query(db, MERGE_JOIN, runs=3, warmup=1).minimum
    _fast(db, False)
    range_slow = time_query(db, RANGE_TOPN, runs=3, warmup=1).minimum
    ordered_slow = time_query(db, ORDERED_TOPN, runs=3, warmup=1).minimum
    tramp_slow = time_query(db, TRAMPOLINE, runs=1, warmup=0).minimum
    merge_slow = time_query(db, MERGE_JOIN, runs=3, warmup=1).minimum

    range_speedup = range_slow / range_fast
    ordered_speedup = ordered_slow / ordered_fast
    tramp_speedup = tramp_slow / tramp_fast
    merge_speedup = merge_slow / merge_fast

    rows = [
        ["range + Top-N, SeqScan + Sort (seed)", round(range_slow * 1e3, 2)],
        ["range + Top-N, IndexRangeScan + TopN", round(range_fast * 1e3, 2)],
        ["  speedup", round(range_speedup, 1)],
        ["ORDER BY .. LIMIT, full sort", round(ordered_slow * 1e3, 2)],
        ["ORDER BY .. LIMIT, index-ordered", round(ordered_fast * 1e3, 2)],
        ["  speedup", round(ordered_speedup, 1)],
        [f"trampoline {HOPS} range probes, O(n) each",
         round(tramp_slow * 1e3, 2)],
        ["trampoline probes via index, O(log n + k)",
         round(tramp_fast * 1e3, 2)],
        ["  speedup", round(tramp_speedup, 1)],
        ["equi-join 100k x 2k, hash", round(merge_slow * 1e3, 2)],
        ["equi-join 100k x 2k, merge", round(merge_fast * 1e3, 2)],
        ["  speedup", round(merge_speedup, 1)],
    ]
    write_artifact(
        "bench_ordered_paths.txt",
        render_table(["configuration", "ms"], rows,
                     title=f"Ordered access paths over {ROWS} rows"))
    write_json("ordered_paths", {
        "rows": ROWS,
        "timings_s": {
            "range_topn_seqscan_sort": range_slow,
            "range_topn_index": range_fast,
            "ordered_limit_sort": ordered_slow,
            "ordered_limit_index": ordered_fast,
            "trampoline_seqscan": tramp_slow,
            "trampoline_index": tramp_fast,
            "merge_join_hash": merge_slow,
            "merge_join_merge": merge_fast,
        },
        "speedups": {
            "range_topn": range_speedup,
            "ordered_limit": ordered_speedup,
            "trampoline": tramp_speedup,
            "merge_join": merge_speedup,
        },
        "rows_per_s": {
            "range_topn_seqscan_sort": ROWS / range_slow,
            "range_topn_index": ROWS / range_fast,
        },
    })

    # Acceptance gates: >= 10x on the 100k range + Top-N workload, and the
    # trampoline's per-iteration probes clearly off the O(n) cliff.
    assert range_speedup >= 10, (
        f"range + Top-N speedup {range_speedup:.1f}x < 10x "
        f"({range_slow * 1e3:.1f} ms -> {range_fast * 1e3:.1f} ms)")
    assert ordered_speedup >= 10, (
        f"index-ordered Top-N speedup {ordered_speedup:.1f}x < 10x")
    assert tramp_speedup >= 5, (
        f"trampoline probe speedup {tramp_speedup:.1f}x < 5x")
