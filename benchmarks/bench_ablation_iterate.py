"""Ablation — WITH ITERATE vs vanilla WITH RECURSIVE, runtime side.

Table 2 establishes the space win; this bench quantifies the *time* win of
not maintaining the union trace (append + page accounting per activation).
Expected shape: ITERATE <= RECURSIVE at every size, with the gap growing
for parse (whose activation rows carry the shrinking input string).
"""

from __future__ import annotations

from conftest import parse_query, walk_query

from repro.bench.harness import render_table, time_query
from repro.workloads import make_parseable_input

WIN, LOOSE = 10**9, -(10**9)


def test_ablation_iterate_report(demo, write_artifact, benchmark):
    db = demo.db
    text = make_parseable_input(2000, seed=13)

    def iterate_run():
        db.execute(parse_query("parse_it", per_call=True), [text])

    benchmark.pedantic(iterate_run, rounds=3, iterations=1)

    rows = []
    gaps = {}
    for length in (500, 1000, 2000, 4000):
        sample = make_parseable_input(length, seed=13)
        recursive = time_query(db, parse_query("parse_c", per_call=True),
                               [sample], runs=3)
        iterate = time_query(db, parse_query("parse_it", per_call=True),
                             [sample], runs=3)
        gaps[length] = iterate.minimum / recursive.minimum
        rows.append(["parse", length, round(recursive.mean * 1000, 1),
                     round(iterate.mean * 1000, 1),
                     round(100.0 * iterate.mean / recursive.mean, 1)])
    for steps in (500, 1000):
        recursive = time_query(db, walk_query("walk_c", per_call=True),
                               [WIN, LOOSE, steps], runs=3)
        iterate = time_query(db, walk_query("walk_it", per_call=True),
                             [WIN, LOOSE, steps], runs=3)
        rows.append(["walk", steps, round(recursive.mean * 1000, 1),
                     round(iterate.mean * 1000, 1),
                     round(100.0 * iterate.mean / recursive.mean, 1)])
    table = render_table(
        ["function", "#iterations", "RECURSIVE ms", "ITERATE ms", "rel %"],
        rows, "Ablation: WITH ITERATE vs WITH RECURSIVE (run time)")
    write_artifact("ablation_iterate.txt", table)

    # ITERATE is at least as fast at the largest parse size (the trace cost
    # scales with rows/bytes; small sizes are timer-noise territory).
    assert gaps[4000] < 1.0, gaps
