"""Vectorized executor core: what batch-at-a-time buys over row-at-a-time.

The paper's thesis is set-oriented beats tuple-at-a-time dispatch; PR 10
applies it to plain single-table SELECT cores (executor/vector.py).  This
benchmark runs the same 100k-row workloads under ``enable_vectorize`` on
and off — same engine, same plans otherwise — and gates the headline
claims:

* **full-table aggregate** (``count(*) / sum / avg`` over every row):
  ≥ 5x.  This is the purest measure of per-row closure-dispatch overhead
  vs column-loop accumulation.
* **filtered aggregate** (predicate rejects 2/3 of the table, sum the
  rest): ≥ 5x.  Exercises VectorFilter's selection vectors feeding the
  aggregate fold.

Two more workloads are reported unasserted (they carry per-row output
materialization costs the batch engine cannot amortize away):
**filter+project** (predicate + two-column output) and **grouped
aggregate** (10 groups).

All queries verify identical results under both settings before timing.
``BENCH_vectorized.json`` is emitted for the cross-PR perf trajectory.
"""

from __future__ import annotations

import gc
import time

from repro.bench.harness import render_table
from repro.sql import Database

ROWS = 100_000
REPS = 7

WORKLOADS = [
    ("full_table_aggregate",
     "SELECT count(*), sum(v), avg(v) FROM big"),
    ("filtered_aggregate",
     "SELECT sum(v) FROM big WHERE k % 3 = 0"),
    ("filter_project",
     "SELECT k, v FROM big WHERE v % 7 = 3"),
    ("grouped_aggregate",
     "SELECT v % 10, count(*), sum(k) FROM big GROUP BY v % 10"),
]

#: Workloads gated at >= 5x; the rest are reported for the trajectory.
GATED = {"full_table_aggregate": 5.0, "filtered_aggregate": 5.0}


def _build() -> Database:
    db = Database(profile=False)
    db.execute("CREATE TABLE big(k int, v int)")
    conn = db.connect()
    conn.execute("BEGIN")
    for i in range(ROWS):
        conn.execute("INSERT INTO big VALUES ($1, $2)",
                     [i, (i * 37) % 1000])
    conn.execute("COMMIT")
    return db


def _best(db: Database, query: str) -> float:
    db.execute(query)  # warm: plan cache + visibility cache
    best = float("inf")
    gc.collect()
    gc.disable()  # keep collector pauses out of the timed region
    try:
        for _ in range(REPS):
            start = time.perf_counter()
            db.execute(query)
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def test_vectorized_speedups(write_artifact, write_json):
    db = _build()
    timings: dict[str, dict[str, float]] = {}
    speedups: dict[str, float] = {}
    rows = []
    for name, query in WORKLOADS:
        db.execute("SET enable_vectorize = on")
        vec_rows = db.execute(query).rows
        assert "Vector" in db.execute("EXPLAIN " + query).rows[0][0], \
            f"{name}: expected a vectorized plan"
        on_s = _best(db, query)
        db.execute("SET enable_vectorize = off")
        assert db.execute(query).rows == vec_rows, \
            f"{name}: row/batch engines disagree"
        off_s = _best(db, query)
        speedup = off_s / on_s
        timings[name] = {"vectorized_s": on_s, "row_s": off_s}
        speedups[name] = speedup
        rows.append((name, f"{on_s * 1000:.1f}", f"{off_s * 1000:.1f}",
                     f"{speedup:.2f}x", "yes" if name in GATED else ""))

    write_artifact("bench_vectorized.txt", render_table(
        ("workload", "vector[ms]", "row[ms]", "speedup", "gated"),
        rows,
        title=f"Vectorized vs row-at-a-time execution "
              f"({ROWS} rows, best of {REPS})"))
    write_json("vectorized", {
        "rows": ROWS,
        "reps": REPS,
        "timings_s": timings,
        "speedups": speedups,
        "gates": {name: floor for name, floor in GATED.items()},
    })
    for name, floor in GATED.items():
        assert speedups[name] >= floor, (
            f"{name}: vectorized speedup {speedups[name]:.2f}x "
            f"below the {floor}x gate")
