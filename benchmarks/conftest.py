"""Shared fixtures for the paper-artifact benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper into
``benchmarks/results/`` (plain text) and exposes representative operations
to pytest-benchmark.  Sweeps are scaled down from the paper's sizes — a
Python engine is ~100x slower per tuple than PostgreSQL's C — with the
scaling factors recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads import build_demo_database

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def demo():
    """One demo database shared by all benchmarks (seeded, profiler off)."""
    built = build_demo_database(seed=7)
    built.db.profiler.enabled = False
    return built


@pytest.fixture(scope="session")
def write_json():
    """Write BENCH_<name>.json into results/ (machine-readable timings,
    speedups and rows/s — the cross-PR perf trajectory)."""
    from repro.bench.harness import write_bench_json

    def write(name: str, payload: dict) -> Path:
        path = write_bench_json(name, payload, RESULTS_DIR)
        print(f"\n--- {path.name} -> {path}")
        return path

    return write


@pytest.fixture(scope="session")
def write_artifact():
    def write(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / name
        path.write_text(text + "\n")
        print(f"\n--- {name} ---------------------------------------------")
        print(text)
        return path

    return write


def walk_query(function: str, per_call: bool = False) -> str:
    """Driving query for walk variants ($1=win, $2=loose, $3=steps)."""
    call = f"{function}(row(0,0)::coord, $1, $2, $3)"
    if per_call:
        return f"SELECT {call}"
    return f"SELECT count({call}) FROM bench_calls AS b"


def parse_query(function: str, per_call: bool = False) -> str:
    call = f"{function}($1)"
    if per_call:
        return f"SELECT {call}"
    return f"SELECT count({call}) FROM bench_calls AS b"
