"""Ablation — SSA optimization pipeline on vs off.

The paper notes that SSA form "facilitates a wide range of code
simplifications".  This bench quantifies what they buy us: emitted-SQL
size (a proxy for plan size and per-step work) and run time of the
compiled walk()/parse() with the optimizer disabled.

Expected shape: optimization never hurts; it shrinks the emitted SQL
(fewer SSA versions -> fewer run-table columns and LATERAL links) and is
neutral-to-positive on run time.
"""

from __future__ import annotations

from conftest import walk_query

from repro.bench.harness import render_table, time_query
from repro.compiler import compile_plsql
from repro.workloads import WORKLOADS

WIN, LOOSE = 10**9, -(10**9)


def test_ablation_optimize_report(demo, write_artifact, benchmark):
    db = demo.db

    rows = []
    for name in ("walk", "parse", "traverse", "fibonacci"):
        optimized = demo.compiled[name]
        unoptimized = compile_plsql(WORKLOADS[name], db, optimize=False)
        unoptimized.register(db, name=f"{name}_noopt")
        size_opt = len(optimized.sql())
        size_raw = len(unoptimized.sql())
        cols_opt = len(optimized.udf.rec_params)
        cols_raw = len(unoptimized.udf.rec_params)
        rows.append([name, size_raw, size_opt,
                     round(100.0 * size_opt / size_raw, 1),
                     cols_raw, cols_opt])

    def run_optimized():
        db.reseed(42)
        db.execute(walk_query("walk_c", per_call=True), [WIN, LOOSE, 300])

    benchmark.pedantic(run_optimized, rounds=3, iterations=1)

    timing_rows = []
    raw = time_query(db, walk_query("walk_noopt", per_call=True),
                     [WIN, LOOSE, 500], runs=3)
    opt = time_query(db, walk_query("walk_c", per_call=True),
                     [WIN, LOOSE, 500], runs=3)
    timing_rows.append(["walk(500)", round(raw.mean * 1000, 1),
                        round(opt.mean * 1000, 1),
                        round(100.0 * opt.mean / raw.mean, 1)])

    table = render_table(
        ["function", "SQL bytes (no opt)", "SQL bytes (opt)", "size %",
         "run cols (no opt)", "run cols (opt)"],
        rows, "Ablation: SSA optimizations — emitted query size")
    table += "\n\n" + render_table(
        ["case", "no-opt ms", "opt ms", "rel %"], timing_rows,
        "Ablation: SSA optimizations — run time")
    write_artifact("ablation_optimize.txt", table)

    for name, size_raw, size_opt, _rel, cols_raw, cols_opt in rows:
        assert size_opt <= size_raw, name
        assert cols_opt <= cols_raw, name
    # walk must shrink visibly (copy propagation removes version churn).
    walk_row = rows[0]
    assert walk_row[2] < walk_row[1], walk_row
    # Optimization is not a pessimization at run time (20% tolerance for
    # timer noise).
    assert opt.minimum <= raw.minimum * 1.2
