"""Figure 11a — heat map: relative runtime of recursive SQL vs PL/SQL, walk.

Paper: #invocations (Q→walk) x #iterations (walk→Qi) from 2..1024 each;
relative runtime ~59-61 % across the bulk of the grid, with only the very
small corner (few invocations x few iterations) failing to amortize the
one-time cost of the template query (values > 100 % bottom-left).

Scaled grid here: invocations 1..32, iterations 2..128.  Shape criteria:
light colors (clear wins) away from the small corner; the worst relative
value sits in the smallest corner; large-grid cells all favour SQL.
"""

from __future__ import annotations

from conftest import walk_query

from repro.bench.harness import measure_heatmap, render_heatmap

INVOCATIONS = [1, 2, 4, 8, 16, 32]
ITERATIONS = [2, 4, 8, 16, 32, 64, 128]
WIN, LOOSE = 10**9, -(10**9)


def build_heatmap(db, runs: int = 3):
    def make_query(function: str, iterations: int):
        return walk_query(function), [WIN, LOOSE, iterations]

    return measure_heatmap(db, INVOCATIONS, ITERATIONS, make_query,
                           slow_name="walk", fast_name="walk_c", runs=runs)


def test_fig11a_report(demo, write_artifact, benchmark):
    db = demo.db

    from repro.bench.harness import ensure_calls_table
    ensure_calls_table(db, 8)

    def one_cell():
        db.reseed(42)
        db.execute(walk_query("walk_c"), [WIN, LOOSE, 16])

    benchmark.pedantic(one_cell, rounds=3, iterations=1)

    result = build_heatmap(db)
    text = render_heatmap(result, "Figure 11a: walk, relative runtime % "
                                  "(recursive SQL vs PL/SQL)")
    write_artifact("fig11a_walk_heatmap.txt", text)

    flat = [v for row in result.grid for v in row]
    # SQL wins over most of the grid.
    wins = sum(1 for v in flat if v < 100.0)
    assert wins >= 0.8 * len(flat), (wins, len(flat))
    # The big-work corner (max invocations, max iterations) is a clear win.
    assert result.grid[-1][-1] < 95.0, result.grid[-1][-1]
    # The advantage at scale beats the advantage in the tiny corner.
    assert result.grid[-1][-1] < result.grid[0][0] + 5.0
