"""Figure 10 — iterative PL/SQL vs recursive SQL: wall-clock time of walk().

Paper: one invocation of walk() across 10k..100k intra-function iterations
on PostgreSQL 11.3; the WITH RECURSIVE variant saves ~43 % consistently,
min/max envelope over 10 runs.

Scaled here to 250..2000 iterations (Python engine), 5 runs.  Shape
criteria: the compiled variant is consistently faster at every sweep point,
and the relative runtime does not degrade as iterations grow (the saving is
per-iteration, not a fixed cost).
"""

from __future__ import annotations

from conftest import walk_query

from repro.bench.harness import measure_series, render_table

ITERATIONS = [250, 500, 1000, 2000]
WIN, LOOSE = 10**9, -(10**9)


def build_series(db, runs: int = 5):
    variants = {
        "PL/SQL": lambda steps: (walk_query("walk", per_call=True),
                                 [WIN, LOOSE, steps]),
        "WITH RECURSIVE": lambda steps: (walk_query("walk_c", per_call=True),
                                         [WIN, LOOSE, steps]),
        "WITH ITERATE": lambda steps: (walk_query("walk_it", per_call=True),
                                       [WIN, LOOSE, steps]),
    }
    return measure_series(db, ITERATIONS, variants, runs=runs)


def test_fig10_report(demo, write_artifact, benchmark):
    db = demo.db

    def compiled_point():
        db.reseed(42)
        db.execute(walk_query("walk_c", per_call=True), [WIN, LOOSE, 500])

    benchmark.pedantic(compiled_point, rounds=3, iterations=1)

    series = build_series(db)
    rows = []
    for i, steps in enumerate(series.x_values):
        interp = series.variants["PL/SQL"][i]
        compiled = series.variants["WITH RECURSIVE"][i]
        iterate = series.variants["WITH ITERATE"][i]
        rows.append([
            steps,
            round(interp.mean * 1000, 1),
            f"[{interp.minimum * 1000:.1f}..{interp.maximum * 1000:.1f}]",
            round(compiled.mean * 1000, 1),
            f"[{compiled.minimum * 1000:.1f}..{compiled.maximum * 1000:.1f}]",
            round(iterate.mean * 1000, 1),
            round(100.0 * compiled.mean / interp.mean, 1),
        ])
    table = render_table(
        ["#iterations", "PL/SQL ms", "env", "RECURSIVE ms", "env",
         "ITERATE ms", "rel %"],
        rows, "Figure 10: walk() wall-clock, one invocation (scaled sweep)")
    write_artifact("fig10_walk_scaling.txt", table)

    relative = series.relative("WITH RECURSIVE", "PL/SQL")
    # Compiled wins clearly at every point of the sweep (the per-point
    # gradient fluctuates run to run; the paper's claim that matters here
    # is the consistent, per-iteration advantage).
    assert all(r < 95.0 for r in relative), relative
    assert sum(relative) / len(relative) < 90.0, relative
